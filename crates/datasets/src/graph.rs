//! Edge-list graphs: the input format of the REACH and SG experiments.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt::Write as _;

/// A directed graph stored as an edge list over dense `u32` node ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeList {
    /// Descriptive name (dataset name for reporting).
    pub name: String,
    /// Directed edges `(from, to)`.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Creates a named edge list.
    pub fn new(name: impl Into<String>, edges: Vec<(u32, u32)>) -> Self {
        EdgeList {
            name: name.into(),
            edges,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct nodes mentioned by any edge.
    pub fn node_count(&self) -> usize {
        let mut nodes = HashSet::new();
        for &(a, b) in &self.edges {
            nodes.insert(a);
            nodes.insert(b);
        }
        nodes.len()
    }

    /// Largest node id plus one (0 for an empty graph).
    pub fn id_bound(&self) -> u32 {
        self.edges
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0)
    }

    /// Removes duplicate edges and self-loops, preserving first occurrence
    /// order.
    pub fn dedup(&mut self) {
        let mut seen = HashSet::with_capacity(self.edges.len());
        self.edges.retain(|&(a, b)| a != b && seen.insert((a, b)));
    }

    /// The edges as a flat row-major `u32` buffer, ready for
    /// `GpulogEngine::add_facts_flat`.
    pub fn to_flat(&self) -> Vec<u32> {
        let mut flat = Vec::with_capacity(self.edges.len() * 2);
        for &(a, b) in &self.edges {
            flat.push(a);
            flat.push(b);
        }
        flat
    }

    /// Serializes to a whitespace-separated edge-list text (SNAP format).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for &(a, b) in &self.edges {
            let _ = writeln!(out, "{a}\t{b}");
        }
        out
    }

    /// Parses a whitespace-separated edge list (SNAP format). Lines starting
    /// with `#` or `%` are comments.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn from_text(name: impl Into<String>, text: &str) -> Result<Self, String> {
        let mut edges = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let parse = |s: Option<&str>| -> Result<u32, String> {
                s.ok_or_else(|| format!("line {}: missing field", lineno + 1))?
                    .parse::<u32>()
                    .map_err(|e| format!("line {}: {e}", lineno + 1))
            };
            let a = parse(parts.next())?;
            let b = parse(parts.next())?;
            edges.push((a, b));
        }
        Ok(EdgeList::new(name, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let g = EdgeList::new("g", vec![(0, 1), (1, 2), (5, 1)]);
        assert_eq!(g.len(), 3);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.id_bound(), 6);
        assert_eq!(g.to_flat(), vec![0, 1, 1, 2, 5, 1]);
        assert!(!g.is_empty());
    }

    #[test]
    fn dedup_removes_duplicates_and_self_loops() {
        let mut g = EdgeList::new("g", vec![(1, 2), (2, 2), (1, 2), (3, 1)]);
        g.dedup();
        assert_eq!(g.edges, vec![(1, 2), (3, 1)]);
    }

    #[test]
    fn text_round_trip() {
        let g = EdgeList::new("g", vec![(7, 8), (9, 10)]);
        let text = g.to_text();
        let parsed = EdgeList::from_text("g", &text).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn from_text_skips_comments_and_reports_errors() {
        let parsed = EdgeList::from_text("g", "# comment\n1 2\n% other\n3\t4\n").unwrap();
        assert_eq!(parsed.edges, vec![(1, 2), (3, 4)]);
        assert!(EdgeList::from_text("g", "1 banana").is_err());
        assert!(EdgeList::from_text("g", "1").is_err());
    }

    #[test]
    fn empty_graph_behaves() {
        let g = EdgeList::default();
        assert!(g.is_empty());
        assert_eq!(g.id_bound(), 0);
        assert_eq!(g.node_count(), 0);
    }
}
