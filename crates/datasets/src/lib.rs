//! # `gpulog-datasets`: workloads for the GPUlog evaluation
//!
//! The paper evaluates on SNAP / SuiteSparse / road-network graphs and on
//! Graspan-extracted CSPA inputs; none of those are redistributable here, so
//! this crate generates synthetic stand-ins per topology class (see
//! DESIGN.md for the substitution argument) plus the named, scaled dataset
//! registry the benchmark harness uses to label its tables with the paper's
//! dataset names.
//!
//! ```
//! use gpulog_datasets::{PaperDataset, generators};
//!
//! let dblp_like = PaperDataset::ComDblp.generate(0.25);
//! assert!(dblp_like.len() > 100);
//! let tree = generators::binary_tree(5);
//! assert_eq!(tree.node_count(), 31);
//! ```

pub mod cspa;
pub mod generators;
pub mod graph;
pub mod named;

pub use cspa::{CspaInput, CspaShape};
pub use graph::EdgeList;
pub use named::{example_graph, PaperDataset};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_example_runs() {
        let g = PaperDataset::ComDblp.generate(0.25);
        assert!(g.len() > 100);
    }

    #[test]
    fn cspa_presets_are_exported() {
        let input = cspa::httpd_like(1.0 / 1000.0);
        assert!(input.assign_len() > 0);
    }
}
