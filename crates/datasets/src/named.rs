//! Named, scaled stand-ins for the datasets the paper evaluates on.
//!
//! Each [`PaperDataset`] names one of the graphs in Tables 1–3 and maps it
//! to the synthetic generator whose topology class it belongs to. The
//! `scale` argument multiplies the default (laptop-sized) node counts, so
//! the harness can sweep sizes without changing dataset identity. The
//! generated graphs are *not* the originals — see DESIGN.md for the
//! substitution rationale — but they preserve the iteration-count and
//! fan-out behaviour that differentiates the datasets in the paper.

use crate::generators::{layered_dag, mesh_graph, power_law_graph, random_graph, road_network};
use crate::graph::EdgeList;
use serde::{Deserialize, Serialize};

/// The graphs named in the paper's Tables 1, 2, and 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperDataset {
    /// `usroads` — US road network (Table 1): extreme iteration counts,
    /// every iteration tiny.
    UsRoads,
    /// `vsp_finan` — financial optimization mesh (Tables 1–2): long tail.
    VspFinan,
    /// `fe_ocean` — finite-element ocean mesh (Tables 1–2).
    FeOcean,
    /// `com-dblp` — DBLP collaboration network (Tables 1–2): few, fat
    /// iterations.
    ComDblp,
    /// `Gnutella31` — P2P overlay snapshot (Tables 1–2).
    Gnutella31,
    /// `fe_body` — finite-element body mesh (Tables 2–3).
    FeBody,
    /// `SF.cedge` — San Francisco road segments (Tables 2–3).
    SfCedge,
    /// `loc-Brightkite` — location-based social network (Table 3).
    LocBrightkite,
    /// `fe_sphere` — finite-element sphere mesh (Table 3).
    FeSphere,
    /// `CA-HepTH` — arXiv collaboration network (Table 3).
    CaHepTh,
    /// `ego-Facebook` — Facebook ego networks (Table 3).
    EgoFacebook,
}

impl PaperDataset {
    /// The paper's name for this dataset.
    pub fn paper_name(&self) -> &'static str {
        match self {
            PaperDataset::UsRoads => "usroads",
            PaperDataset::VspFinan => "vsp_finan",
            PaperDataset::FeOcean => "fe_ocean",
            PaperDataset::ComDblp => "com-dblp",
            PaperDataset::Gnutella31 => "Gnutella31",
            PaperDataset::FeBody => "fe_body",
            PaperDataset::SfCedge => "SF.cedge",
            PaperDataset::LocBrightkite => "loc-Brightkite",
            PaperDataset::FeSphere => "fe_sphere",
            PaperDataset::CaHepTh => "CA-HepTH",
            PaperDataset::EgoFacebook => "ego-Facebook",
        }
    }

    /// The datasets of Table 1 (eager buffer management), in table order.
    pub fn table1() -> Vec<PaperDataset> {
        vec![
            PaperDataset::UsRoads,
            PaperDataset::VspFinan,
            PaperDataset::FeOcean,
            PaperDataset::ComDblp,
            PaperDataset::Gnutella31,
        ]
    }

    /// The datasets of Table 2 (REACH comparison), in table order.
    pub fn table2() -> Vec<PaperDataset> {
        vec![
            PaperDataset::ComDblp,
            PaperDataset::FeOcean,
            PaperDataset::VspFinan,
            PaperDataset::Gnutella31,
            PaperDataset::FeBody,
            PaperDataset::SfCedge,
        ]
    }

    /// The datasets of Table 3 (SG comparison), in table order.
    pub fn table3() -> Vec<PaperDataset> {
        vec![
            PaperDataset::FeBody,
            PaperDataset::LocBrightkite,
            PaperDataset::FeSphere,
            PaperDataset::SfCedge,
            PaperDataset::CaHepTh,
            PaperDataset::EgoFacebook,
        ]
    }

    /// Generates the scaled stand-in graph. `scale = 1.0` is the default
    /// laptop-sized instantiation; larger scales grow node counts linearly.
    pub fn generate(&self, scale: f64) -> EdgeList {
        let s = |n: u32| ((n as f64 * scale).round() as u32).max(8);
        // Two-dimensional generators (meshes, layered DAGs) scale each side
        // by sqrt(scale) so the edge count — the quantity the paper's tables
        // are organized around — grows linearly with `scale`.
        let s2 = |n: u32| ((n as f64 * scale.sqrt()).round() as u32).max(4);
        let mut g = match self {
            // Road networks: long chains, shortcut every few nodes.
            PaperDataset::UsRoads => road_network(s(700), 9, 11),
            PaperDataset::SfCedge => road_network(s(450), 7, 12),
            // Finite-element meshes.
            PaperDataset::VspFinan => mesh_graph(s2(42), s2(42), 13),
            PaperDataset::FeOcean => mesh_graph(s2(36), s2(36), 14),
            PaperDataset::FeBody => mesh_graph(s2(26), s2(26), 15),
            PaperDataset::FeSphere => mesh_graph(s2(30), s2(30), 16),
            // Social / collaboration networks.
            PaperDataset::ComDblp => power_law_graph(s(1600), 4, 17),
            PaperDataset::LocBrightkite => power_law_graph(s(900), 3, 18),
            PaperDataset::CaHepTh => power_law_graph(s(700), 3, 19),
            PaperDataset::EgoFacebook => power_law_graph(s(350), 4, 20),
            // P2P overlay.
            PaperDataset::Gnutella31 => layered_dag(s2(24), s2(60), 2, 21),
        };
        g.name = format!("{} (synthetic, scale {scale})", self.paper_name());
        g
    }
}

/// A small random graph for smoke tests and examples.
pub fn example_graph() -> EdgeList {
    random_graph(64, 256, 0xE0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_dataset_generates_a_non_trivial_graph() {
        for ds in PaperDataset::table1()
            .into_iter()
            .chain(PaperDataset::table2())
            .chain(PaperDataset::table3())
        {
            let g = ds.generate(0.25);
            assert!(g.len() > 20, "{} too small", ds.paper_name());
            assert!(g.name.contains(ds.paper_name()));
        }
    }

    #[test]
    fn scale_grows_the_graph() {
        let small = PaperDataset::FeBody.generate(0.5);
        let large = PaperDataset::FeBody.generate(1.5);
        assert!(large.len() > small.len() * 2);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            PaperDataset::ComDblp.generate(0.3),
            PaperDataset::ComDblp.generate(0.3)
        );
    }

    #[test]
    fn road_datasets_are_roads_and_social_datasets_are_skewed() {
        let road = PaperDataset::UsRoads.generate(0.5);
        // Road stand-ins are near-linear: edges ~ 2x nodes.
        let ratio = road.len() as f64 / road.node_count() as f64;
        assert!(ratio < 3.0, "road edge/node ratio {ratio}");
        let social = PaperDataset::ComDblp.generate(0.5);
        let ratio = social.len() as f64 / social.node_count() as f64;
        assert!(ratio > 3.0, "social edge/node ratio {ratio}");
    }

    #[test]
    fn example_graph_is_small() {
        assert!(example_graph().node_count() <= 64);
    }
}
