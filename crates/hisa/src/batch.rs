//! [`TupleBatch`]: the owned, arity-tagged tuple container that flows
//! between relational-algebra operators.
//!
//! Every intermediate result of rule evaluation — scan output, join
//! output, the deduplicated delta — is a dense, row-major buffer of
//! fixed-width [`Value`] tuples. Historically these travelled as bare
//! `(Vec<u32>, usize)` pairs whose invariants (is the buffer ragged? is it
//! sorted and duplicate-free?) lived in comments. A `TupleBatch` carries
//! the arity with the data and records the *sorted + unique* property as a
//! flag, so fast paths like [`crate::Hisa::build_from_batch`] become
//! type-driven: a batch that proves it is already canonical skips the
//! sort/dedup passes, and one that does not gets the general path.

use crate::tuple::Value;
use std::num::NonZeroUsize;

/// An owned batch of fixed-arity tuples in dense row-major layout.
///
/// # Examples
///
/// ```
/// use gpulog_hisa::TupleBatch;
///
/// let batch = TupleBatch::from_rows(2, [[1u32, 2], [3, 4]]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.arity(), 2);
/// assert_eq!(batch.as_flat(), &[1, 2, 3, 4]);
/// assert_eq!(batch.rows().collect::<Vec<_>>(), vec![&[1, 2][..], &[3, 4][..]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleBatch {
    arity: usize,
    data: Vec<Value>,
    sorted_unique: bool,
}

impl TupleBatch {
    /// Wraps a flat row-major buffer with its arity. The batch makes no
    /// claim about sort order or uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or `data.len()` is not a multiple of it.
    pub fn new(arity: usize, data: Vec<Value>) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert_eq!(
            data.len() % arity,
            0,
            "flat buffer length {} is not a multiple of arity {arity}",
            data.len()
        );
        TupleBatch {
            arity,
            data,
            sorted_unique: false,
        }
    }

    /// An empty batch of the given arity. Vacuously sorted and unique.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero.
    pub fn empty(arity: usize) -> Self {
        TupleBatch::new(arity, Vec::new()).assert_sorted_unique()
    }

    /// Builds a batch from individual rows.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or any row's length differs from it.
    pub fn from_rows<I, T>(arity: usize, rows: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[Value]>,
    {
        assert!(arity > 0, "arity must be positive");
        let mut data = Vec::new();
        for row in rows {
            let row = row.as_ref();
            assert_eq!(row.len(), arity, "row arity mismatch");
            data.extend_from_slice(row);
        }
        TupleBatch::new(arity, data)
    }

    /// Wraps a buffer whose rows are already lexicographically sorted and
    /// duplicate-free, recording that property in the type. Consumers such
    /// as [`crate::Hisa::build_from_batch`] use the flag to take their
    /// sort/dedup-free fast paths.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or the buffer is ragged. Sorted order and
    /// uniqueness are the caller's contract, checked only under
    /// `debug_assertions`.
    pub fn from_sorted_unique_flat(arity: usize, data: Vec<Value>) -> Self {
        TupleBatch::new(arity, data).assert_sorted_unique()
    }

    /// Marks this batch as lexicographically sorted and duplicate-free
    /// (caller's contract; validated under `debug_assertions` only).
    #[must_use]
    pub fn assert_sorted_unique(mut self) -> Self {
        debug_assert!(
            rows_are_sorted_unique(&self.data, self.arity),
            "batch rows must be strictly increasing to carry the sorted-unique flag"
        );
        self.sorted_unique = true;
        self
    }

    /// Number of columns per tuple.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// Whether the batch holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether the rows are known to be lexicographically sorted and
    /// duplicate-free. `false` means *unknown*, not *unsorted*.
    pub fn is_sorted_unique(&self) -> bool {
        self.sorted_unique
    }

    /// The dense row-major buffer.
    pub fn as_flat(&self) -> &[Value] {
        &self.data
    }

    /// Consumes the batch, returning the flat buffer.
    pub fn into_flat(self) -> Vec<Value> {
        self.data
    }

    /// Iterates the rows as borrowed slices, in storage order.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// One row by index.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[Value] {
        &self.data[row * self.arity..(row + 1) * self.arity]
    }

    /// Copies the rows out as owned vectors (convenient for tests and
    /// host-side export).
    pub fn to_rows(&self) -> Vec<Vec<Value>> {
        self.rows().map(<[Value]>::to_vec).collect()
    }

    /// Hash-partitions the rows into `shards` batches by
    /// [`crate::shard_of`] over the `key_cols` values, preserving the
    /// relative row order within each shard. Rows with equal key values
    /// (and in particular duplicate rows) always land in the same shard.
    ///
    /// A sorted-unique batch partitions into sorted-unique shards (each
    /// shard is a subsequence of the original row order), and the flag is
    /// carried over accordingly.
    ///
    /// # Panics
    ///
    /// Panics if any key column is out of range; a zero shard count is
    /// unrepresentable ([`NonZeroUsize`]).
    pub fn partition_by_key_hash(
        &self,
        key_cols: &[usize],
        shards: NonZeroUsize,
    ) -> Vec<TupleBatch> {
        crate::partition_flat_by_key_hash(&self.data, self.arity, key_cols, shards)
            .into_iter()
            .map(|data| {
                let batch = TupleBatch::new(self.arity, data);
                if self.sorted_unique {
                    batch.assert_sorted_unique()
                } else {
                    batch
                }
            })
            .collect()
    }

    /// Concatenates batches of the same arity in order. The result makes no
    /// sortedness claim (shard-ordered concatenation is not row-sorted).
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or any part's arity differs from it.
    pub fn concat<I: IntoIterator<Item = TupleBatch>>(arity: usize, parts: I) -> TupleBatch {
        let mut data = Vec::new();
        for part in parts {
            assert_eq!(part.arity(), arity, "batch arity mismatch in concat");
            data.extend_from_slice(part.as_flat());
        }
        TupleBatch::new(arity, data)
    }

    /// K-way-merges sorted-unique batches with pairwise-disjoint rows into
    /// one globally sorted-unique batch — the inverse of
    /// [`TupleBatch::partition_by_key_hash`] applied to a sorted-unique
    /// input, and the step that lets per-shard set differences reassemble
    /// into the exact byte sequence a single global difference produces.
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero, any part's arity differs, or a part does
    /// not carry the sorted-unique flag. Disjointness is the caller's
    /// contract, checked (with sortedness of the result) only under
    /// `debug_assertions`.
    pub fn merge_sorted_unique<I: IntoIterator<Item = TupleBatch>>(
        arity: usize,
        parts: I,
    ) -> TupleBatch {
        let parts: Vec<TupleBatch> = parts
            .into_iter()
            .inspect(|part| {
                assert_eq!(part.arity(), arity, "batch arity mismatch in merge");
                assert!(
                    part.is_sorted_unique(),
                    "merge_sorted_unique requires sorted-unique parts"
                );
            })
            .filter(|part| !part.is_empty())
            .collect();
        let total: usize = parts.iter().map(|p| p.as_flat().len()).sum();
        let mut data = Vec::with_capacity(total);
        let mut cursors = vec![0usize; parts.len()];
        while data.len() < total {
            let mut min_part: Option<usize> = None;
            for (p, part) in parts.iter().enumerate() {
                if cursors[p] >= part.len() {
                    continue;
                }
                let row = part.row(cursors[p]);
                if min_part.is_none_or(|m| row < parts[m].row(cursors[m])) {
                    min_part = Some(p);
                }
            }
            let p = min_part.expect("a non-exhausted part must remain");
            data.extend_from_slice(parts[p].row(cursors[p]));
            cursors[p] += 1;
        }
        TupleBatch::new(arity, data).assert_sorted_unique()
    }

    /// Set difference of two sorted-unique batches: the rows of `self` that
    /// do not appear in `other`, as one merge-walk over both inputs. The
    /// result keeps `self`'s row order, so it stays sorted-unique — this is
    /// how the pipelined backend subtracts a not-yet-merged pending delta
    /// run from a freshly deduplicated delta, reproducing exactly the rows
    /// a serial difference against the fully merged relation would keep.
    ///
    /// # Panics
    ///
    /// Panics if the arities differ or either batch does not carry the
    /// sorted-unique flag.
    pub fn subtract_sorted_unique(&self, other: &TupleBatch) -> TupleBatch {
        assert_eq!(self.arity, other.arity, "batch arity mismatch in subtract");
        assert!(
            self.is_sorted_unique() && other.is_sorted_unique(),
            "subtract_sorted_unique requires sorted-unique operands"
        );
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        let mut data = Vec::with_capacity(self.data.len());
        let mut o = 0usize;
        for row in self.rows() {
            while o < other.len() && other.row(o) < row {
                o += 1;
            }
            if o >= other.len() || other.row(o) != row {
                data.extend_from_slice(row);
            }
        }
        TupleBatch::new(self.arity, data).assert_sorted_unique()
    }
}

/// Whether the row-major buffer's rows are strictly increasing (i.e.
/// lexicographically sorted and duplicate-free). One linear pass; callers
/// use it to choose sort/dedup-free build paths for data whose provenance
/// is unknown.
pub fn rows_are_sorted_unique(data: &[Value], arity: usize) -> bool {
    data.chunks_exact(arity)
        .zip(data.chunks_exact(arity).skip(1))
        .all(|(a, b)| a < b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_round_trips_through_flat() {
        let rows = [[5u32, 1], [2, 9], [7, 7]];
        let batch = TupleBatch::from_rows(2, rows);
        assert_eq!(batch.as_flat(), &[5, 1, 2, 9, 7, 7]);
        assert_eq!(batch.to_rows(), vec![vec![5, 1], vec![2, 9], vec![7, 7]]);
        assert_eq!(batch.row(1), &[2, 9]);
        assert!(!batch.is_sorted_unique());
    }

    #[test]
    fn empty_batch_is_sorted_unique() {
        let batch = TupleBatch::empty(3);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert!(batch.is_sorted_unique());
    }

    #[test]
    fn sorted_unique_flag_is_carried() {
        let batch = TupleBatch::from_sorted_unique_flat(2, vec![1, 2, 3, 4]);
        assert!(batch.is_sorted_unique());
        assert_eq!(batch.len(), 2);
        let plain = TupleBatch::new(2, vec![1, 2, 3, 4]);
        assert!(!plain.is_sorted_unique());
        assert!(plain.assert_sorted_unique().is_sorted_unique());
    }

    #[test]
    #[should_panic(expected = "not a multiple of arity")]
    fn ragged_buffer_is_rejected() {
        let _ = TupleBatch::new(2, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn from_rows_rejects_wrong_arity() {
        let _ = TupleBatch::from_rows(2, [vec![1u32, 2], vec![3]]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "strictly increasing")]
    fn sorted_unique_contract_is_checked_in_debug_builds() {
        let _ = TupleBatch::from_sorted_unique_flat(2, vec![3, 4, 1, 2]);
    }

    #[test]
    fn partition_routes_equal_keys_to_one_shard_and_preserves_order() {
        let rows: Vec<[u32; 2]> = (0..64).map(|i| [i % 7, i]).collect();
        let batch = TupleBatch::from_rows(2, &rows);
        for shards in [1usize, 2, 3, 5] {
            let shards = NonZeroUsize::new(shards).unwrap();
            let parts = batch.partition_by_key_hash(&[0], shards);
            assert_eq!(parts.len(), shards.get());
            assert_eq!(parts.iter().map(TupleBatch::len).sum::<usize>(), 64);
            for (s, part) in parts.iter().enumerate() {
                let mut last_seen: Option<u32> = None;
                for row in part.rows() {
                    assert_eq!(crate::shard_of(&[row[0]], shards), s);
                    // Column 1 is globally increasing, so order within a
                    // shard must be increasing too.
                    assert!(last_seen.is_none_or(|prev| prev < row[1]));
                    last_seen = Some(row[1]);
                }
            }
        }
    }

    #[test]
    fn partition_of_sorted_unique_batch_keeps_the_flag() {
        let batch = TupleBatch::from_sorted_unique_flat(2, vec![0, 1, 1, 0, 2, 2, 3, 9]);
        let parts = batch.partition_by_key_hash(&[0, 1], NonZeroUsize::new(3).unwrap());
        assert!(parts.iter().all(TupleBatch::is_sorted_unique));
        let merged = TupleBatch::merge_sorted_unique(2, parts);
        assert_eq!(merged, batch);
    }

    #[test]
    fn concat_joins_parts_in_order_without_a_sortedness_claim() {
        let a = TupleBatch::from_rows(2, [[9u32, 9]]);
        let b = TupleBatch::from_rows(2, [[1u32, 1], [2, 2]]);
        let joined = TupleBatch::concat(2, [a, b]);
        assert_eq!(joined.as_flat(), &[9, 9, 1, 1, 2, 2]);
        assert!(!joined.is_sorted_unique());
        assert!(TupleBatch::concat(2, Vec::new()).is_empty());
    }

    #[test]
    fn merge_sorted_unique_reassembles_a_global_sort() {
        let a = TupleBatch::from_sorted_unique_flat(1, vec![0, 3, 7]);
        let b = TupleBatch::from_sorted_unique_flat(1, vec![1, 4]);
        let c = TupleBatch::from_sorted_unique_flat(1, vec![2, 5, 6]);
        let merged = TupleBatch::merge_sorted_unique(1, [a, b, c]);
        assert_eq!(merged.as_flat(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(merged.is_sorted_unique());
    }

    #[test]
    #[should_panic(expected = "requires sorted-unique parts")]
    fn merge_rejects_unflagged_parts() {
        let plain = TupleBatch::new(1, vec![2, 1]);
        let _ = TupleBatch::merge_sorted_unique(1, [plain]);
    }

    #[test]
    fn subtract_removes_exactly_the_shared_rows() {
        let a = TupleBatch::from_sorted_unique_flat(2, vec![0, 1, 2, 2, 3, 0, 5, 9]);
        let b = TupleBatch::from_sorted_unique_flat(2, vec![1, 1, 2, 2, 5, 9, 7, 0]);
        let diff = a.subtract_sorted_unique(&b);
        assert_eq!(diff.as_flat(), &[0, 1, 3, 0]);
        assert!(diff.is_sorted_unique());
        // Edge cases: empty operands on either side.
        assert_eq!(a.subtract_sorted_unique(&TupleBatch::empty(2)), a);
        assert!(TupleBatch::empty(2).subtract_sorted_unique(&a).is_empty());
        // Disjoint operands subtract to the original.
        let c = TupleBatch::from_sorted_unique_flat(2, vec![9, 9]);
        assert_eq!(a.subtract_sorted_unique(&c), a);
    }

    #[test]
    #[should_panic(expected = "requires sorted-unique operands")]
    fn subtract_rejects_unflagged_operands() {
        let plain = TupleBatch::new(1, vec![2, 1]);
        let sorted = TupleBatch::from_sorted_unique_flat(1, vec![1]);
        let _ = plain.subtract_sorted_unique(&sorted);
    }
}
