//! The Hash-Indexed Sorted Array (paper Section 4).
//!
//! A [`Hisa`] is three interconnected layers over one relation:
//!
//! 1. a **data array** — the dense, row-major tuple buffer (key columns
//!    reordered to the front, per Algorithm 1);
//! 2. a **sorted index array** — tuple positions ordered lexicographically,
//!    decoupling sort order from physical placement so merges are
//!    concatenations — plus its inverse (`pos_in_sorted`), mapping a row
//!    back to its current sorted position;
//! 3. an **open-addressing hash table** — mapping the hash of a tuple's key
//!    (join) columns to the data-array row at the *smallest* sorted-index
//!    position holding that key (resolved through the inverse permutation
//!    at query time), giving O(1) entry into a range of matching tuples.
//!    Storing stable row ids instead of shifting positions is what lets
//!    [`Hisa::merge_from`] maintain the hash layer *incrementally* —
//!    inserting only the delta's keys instead of rebuilding over the full
//!    relation.
//!
//! Together the layers provide the four requirements the paper derives for
//! a GPU relation representation: fast range queries (R1), parallel
//! iteration over dense storage (R2), arbitrary-width join keys via hashed
//! keys (R3), and sort-based deduplication (R4).

use crate::batch::{rows_are_sorted_unique, TupleBatch};
use crate::dedup::unique_sorted_positions;
use crate::hash_table::{HashTable, DEFAULT_LOAD_FACTOR};
use crate::tuple::{hash_key, IndexSpec, Value};
use gpulog_device::thrust::merge::merge_sorted_index_rows;
use gpulog_device::thrust::sort::lexicographic_sort_indices;
use gpulog_device::thrust::transform::{gather_rows, invert_permutation, invert_permutation_into};
use gpulog_device::{Device, DeviceBuffer, DeviceResult, PhaseTimer};

/// A relation stored as a hash-indexed sorted array.
///
/// # Examples
///
/// ```
/// use gpulog_device::{Device, profile::DeviceProfile};
/// use gpulog_hisa::{Hisa, IndexSpec};
///
/// # fn main() -> Result<(), gpulog_device::DeviceError> {
/// let device = Device::new(DeviceProfile::default());
/// // Edge(from, to) keyed on `from`.
/// let spec = IndexSpec::new(2, vec![0]);
/// let edges = [0u32, 1, 0, 2, 1, 3, 0, 1]; // (0,1) appears twice
/// let hisa = Hisa::build(&device, spec, &edges)?;
/// assert_eq!(hisa.len(), 3); // deduplicated
/// let from_zero: Vec<_> = hisa.range_query(&[0]).collect();
/// assert_eq!(from_zero.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Hisa {
    spec: IndexSpec,
    device: Device,
    /// Key-first, row-major tuple storage. Contains no duplicate rows.
    data: DeviceBuffer<Value>,
    /// Positions into `data` rows, ordered lexicographically by tuple value.
    sorted_index: DeviceBuffer<u32>,
    /// Inverse of `sorted_index`: `pos_in_sorted[row]` is the sorted-index
    /// position holding `row`. Lets the hash layer store stable data-array
    /// row ids (rows never move — merges concatenate) while range queries
    /// still start at exact, current sorted positions; the key enabler of
    /// incremental hash maintenance.
    pos_in_sorted: DeviceBuffer<u32>,
    hash: HashTable,
    load_factor: f64,
}

impl Hisa {
    /// Builds a HISA from row-major tuples given in their *original* column
    /// order. Duplicate tuples are removed.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the relation
    /// does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if `tuples.len()` is not a multiple of the spec's arity.
    pub fn build(device: &Device, spec: IndexSpec, tuples: &[Value]) -> DeviceResult<Self> {
        Self::build_with_load_factor(device, spec, tuples, DEFAULT_LOAD_FACTOR)
    }

    /// [`Hisa::build`] with an explicit hash-table load factor.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the relation
    /// does not fit on the device.
    pub fn build_with_load_factor(
        device: &Device,
        spec: IndexSpec,
        tuples: &[Value],
        load_factor: f64,
    ) -> DeviceResult<Self> {
        assert_eq!(
            tuples.len() % spec.arity(),
            0,
            "tuple buffer length must be a multiple of the arity"
        );
        let arity = spec.arity();
        // Layer 1: reorder columns key-first and move to the device.
        let reordered = spec.reorder_rows(tuples);
        // Layer 2: sort + dedup.
        let order: Vec<usize> = (0..arity).collect();
        let sorted_all = lexicographic_sort_indices(device, &reordered, arity, &order);
        let unique = unique_sorted_positions(device, &reordered, arity, &sorted_all);
        // Compact the data array to unique rows, stored in sorted order so a
        // freshly built HISA has an identity sorted-index array.
        let compacted = gather_rows(device, &reordered, arity, &unique);
        let rows = unique.len();
        let data = device.buffer_from_vec(compacted)?;
        let sorted_index = device.buffer_from_vec((0..rows as u32).collect())?;
        // Data is stored in sorted order, so position == row.
        let pos_in_sorted = device.buffer_from_vec((0..rows as u32).collect())?;
        // Layer 3: hash table over the key columns.
        let hash = build_hash_layer(
            device,
            &spec,
            &data,
            &sorted_index,
            pos_in_sorted.as_slice(),
            load_factor,
        )?;
        Ok(Hisa {
            spec,
            device: device.clone(),
            data,
            sorted_index,
            pos_in_sorted,
            hash,
            load_factor,
        })
    }

    /// Builds a HISA from tuples that are already in key-first order,
    /// lexicographically sorted, and duplicate-free — the fast path for
    /// delta relations, whose tuples leave the delta-population phase
    /// exactly in this shape. Skips the sort, the adjacent-comparison
    /// dedup pass, and the compaction gather of [`Hisa::build`]: only the
    /// hash layer is constructed, over an identity sorted-index array.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the
    /// relation does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if `reordered.len()` is not a multiple of the arity. Sorted
    /// order and uniqueness are the caller's contract (checked only under
    /// `debug_assertions`).
    pub fn build_from_sorted_unique(
        device: &Device,
        spec: IndexSpec,
        reordered: &[Value],
        load_factor: f64,
    ) -> DeviceResult<Self> {
        let arity = spec.arity();
        assert_eq!(
            reordered.len() % arity,
            0,
            "tuple buffer length must be a multiple of the arity"
        );
        debug_assert!(
            rows_are_sorted_unique(reordered, arity),
            "build_from_sorted_unique requires sorted, duplicate-free rows"
        );
        let rows = reordered.len() / arity;
        let data = device.buffer_from_slice(reordered)?;
        let sorted_index = device.buffer_from_vec((0..rows as u32).collect())?;
        let pos_in_sorted = device.buffer_from_vec((0..rows as u32).collect())?;
        let hash = build_hash_layer(
            device,
            &spec,
            &data,
            &sorted_index,
            pos_in_sorted.as_slice(),
            load_factor,
        )?;
        Ok(Hisa {
            spec,
            device: device.clone(),
            data,
            sorted_index,
            pos_in_sorted,
            hash,
            load_factor,
        })
    }

    /// Re-indexes duplicate-free tuples that are already sorted in their
    /// *original* column order under a different key specification — the
    /// secondary-index fast path of the delta-reuse merge.
    ///
    /// Because the input is identity-sorted and duplicate-free, a stable
    /// sort over the key columns alone yields the full key-first
    /// lexicographic order: rows tying on every key column are ordered by
    /// their remaining columns, and the stable tie-break (input order =
    /// identity order restricted to those equal rows) is exactly that.
    /// So this skips the non-key sort passes, the dedup pass, and the
    /// compaction gather that a fresh [`Hisa::build`] would run.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the
    /// relation does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if `tuples.len()` is not a multiple of the arity. Sorted
    /// order and uniqueness are the caller's contract (checked only under
    /// `debug_assertions`).
    pub fn build_reindexed_from_sorted_unique(
        device: &Device,
        spec: IndexSpec,
        tuples: &[Value],
        load_factor: f64,
    ) -> DeviceResult<Self> {
        let arity = spec.arity();
        assert_eq!(
            tuples.len() % arity,
            0,
            "tuple buffer length must be a multiple of the arity"
        );
        debug_assert!(
            rows_are_sorted_unique(tuples, arity),
            "build_reindexed_from_sorted_unique requires identity-sorted, duplicate-free rows"
        );
        // Stable sort by the key columns only (in significance order);
        // ties keep the identity-sorted input order.
        let order = lexicographic_sort_indices(device, tuples, arity, spec.key_columns());
        let data = device.buffer_from_vec(spec.reorder_rows(tuples))?;
        let pos_in_sorted = device.buffer_from_vec(invert_permutation(device, &order))?;
        let sorted_index = device.buffer_from_vec(order)?;
        let hash = build_hash_layer(
            device,
            &spec,
            &data,
            &sorted_index,
            pos_in_sorted.as_slice(),
            load_factor,
        )?;
        Ok(Hisa {
            spec,
            device: device.clone(),
            data,
            sorted_index,
            pos_in_sorted,
            hash,
            load_factor,
        })
    }

    /// Builds one HISA covering several identity-sorted, duplicate-free,
    /// pairwise-disjoint delta runs under `spec` — the coalesced form of
    /// building each run with [`Hisa::build_reindexed_from_sorted_unique`]
    /// and merging them in order, which is exactly how it is implemented.
    /// The pipelined backend uses this to pay the O(|full|) streaming
    /// passes of the *final* [`Hisa::merge_from`] once for a batch of
    /// deferred deltas instead of once per delta.
    ///
    /// Merging is associative here: every run's rows are globally distinct,
    /// so the merged sorted order is determined by tuple content alone and
    /// the chained result is byte-identical to merging each run into the
    /// destination one at a time.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the
    /// combined relation does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if any run's length is not a multiple of the arity. Sorted
    /// order, uniqueness, and disjointness are the caller's contract
    /// (sortedness checked under `debug_assertions`).
    pub fn build_from_sorted_unique_runs(
        device: &Device,
        spec: IndexSpec,
        runs: &[&[Value]],
        load_factor: f64,
    ) -> DeviceResult<Self> {
        let mut combined: Option<Hisa> = None;
        for run in runs.iter().filter(|run| !run.is_empty()) {
            let part =
                Self::build_reindexed_from_sorted_unique(device, spec.clone(), run, load_factor)?;
            match combined.as_mut() {
                None => combined = Some(part),
                Some(hisa) => hisa.merge_from(&part)?,
            }
        }
        match combined {
            Some(hisa) => Ok(hisa),
            None => Self::empty(device, spec),
        }
    }

    /// Builds a HISA from a [`TupleBatch`], letting the batch's type-level
    /// invariants pick the construction path: a batch carrying the
    /// sorted-unique flag, indexed under an identity permutation (where
    /// original order *is* key-first order), takes the sort/dedup-free
    /// [`Hisa::build_from_sorted_unique`] fast path; anything else takes
    /// the general [`Hisa::build`].
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the
    /// relation does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if the batch's arity differs from the spec's.
    pub fn build_from_batch(
        device: &Device,
        spec: IndexSpec,
        batch: &TupleBatch,
        load_factor: f64,
    ) -> DeviceResult<Self> {
        assert_eq!(
            batch.arity(),
            spec.arity(),
            "batch arity must match the index spec"
        );
        let identity = spec.permutation().iter().copied().eq(0..spec.arity());
        if batch.is_sorted_unique() && identity {
            Self::build_from_sorted_unique(device, spec, batch.as_flat(), load_factor)
        } else {
            Self::build_with_load_factor(device, spec, batch.as_flat(), load_factor)
        }
    }

    /// Creates an empty HISA.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when even the
    /// minimal hash table does not fit (only plausible on tiny test devices).
    pub fn empty(device: &Device, spec: IndexSpec) -> DeviceResult<Self> {
        Self::build(device, spec, &[])
    }

    /// The index specification this HISA was built with.
    pub fn spec(&self) -> &IndexSpec {
        &self.spec
    }

    /// The device this HISA lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Number of (distinct) tuples.
    pub fn len(&self) -> usize {
        self.data.len() / self.spec.arity()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Tuple arity.
    pub fn arity(&self) -> usize {
        self.spec.arity()
    }

    /// The hash-table load factor in use.
    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Bytes of device memory attributable to this HISA (data array, sorted
    /// index array, and hash table).
    pub fn device_bytes(&self) -> usize {
        self.data.accounted_bytes()
            + self.sorted_index.accounted_bytes()
            + self.pos_in_sorted.accounted_bytes()
            + self.hash.accounted_bytes()
    }

    /// The raw key-first data array (row-major).
    pub fn data(&self) -> &[Value] {
        self.data.as_slice()
    }

    /// The sorted index array.
    pub fn sorted_index(&self) -> &[u32] {
        self.sorted_index.as_slice()
    }

    /// One row in key-first order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row_reordered(&self, row: usize) -> &[Value] {
        let arity = self.arity();
        &self.data.as_slice()[row * arity..(row + 1) * arity]
    }

    /// One row in the relation's original column order.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.spec.restore(self.row_reordered(row))
    }

    /// Iterates rows in data-array (storage) order, in original column order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.len()).map(move |r| self.row(r))
    }

    /// Iterates rows in key-first order, in storage order — the dense access
    /// pattern the join kernel uses when this relation is the outer relation.
    pub fn iter_rows_reordered(&self) -> impl Iterator<Item = &[Value]> + '_ {
        self.data.as_slice().chunks_exact(self.arity())
    }

    /// Range query (requirement R1): yields the data-array row ids of every
    /// tuple whose key columns equal `key` (given in key-column order).
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the spec's key arity.
    pub fn range_query<'a>(&'a self, key: &[Value]) -> RangeQuery<'a> {
        assert_eq!(key.len(), self.spec.key_arity(), "key arity mismatch");
        RangeQuery {
            hisa: self,
            key: key.to_vec(),
            position: self
                .key_start_position(key)
                .map_or(usize::MAX, |p| p as usize),
        }
    }

    /// The sorted-index position where a range query for `key` enters the
    /// relation: the hash layer's stored row resolved through the inverse
    /// permutation. For a present key this is the smallest position holding
    /// it (or, under a 64-bit hash collision, the smallest position of any
    /// colliding key — queries scan forward from there). `None` when the
    /// hash layer has no entry for the key.
    ///
    /// # Panics
    ///
    /// Panics if `key.len()` differs from the spec's key arity.
    pub fn key_start_position(&self, key: &[Value]) -> Option<u32> {
        assert_eq!(key.len(), self.spec.key_arity(), "key arity mismatch");
        self.hash
            .lookup(hash_key(key))
            .map(|row| self.pos_in_sorted.as_slice()[row as usize])
    }

    /// Whether the relation contains `tuple` (given in original column order).
    ///
    /// # Panics
    ///
    /// Panics if the tuple's arity differs from the spec's.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        let reordered = self.spec.reorder(tuple);
        let key_arity = self.spec.key_arity();
        self.range_query(&reordered[..key_arity])
            .any(|row| self.row_reordered(row as usize) == reordered.as_slice())
    }

    /// All tuples in original column order, sorted lexicographically by
    /// their key-first representation (a convenient canonical form for
    /// tests and for host-side export).
    pub fn to_sorted_tuples(&self) -> Vec<Vec<Value>> {
        self.sorted_index
            .as_slice()
            .iter()
            .map(|&p| self.row(p as usize))
            .collect()
    }

    /// Deep-copies the HISA onto fresh device buffers: data array, both
    /// index arrays, and the hash layer. This is the copy-on-write detach
    /// behind snapshot publication — a published [`Hisa`] shared with
    /// readers is cloned before the writer mutates it, so the copy must be
    /// byte-identical in every layer.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the device
    /// cannot hold a second copy.
    pub fn try_clone(&self) -> DeviceResult<Self> {
        Ok(Hisa {
            spec: self.spec.clone(),
            device: self.device.clone(),
            data: self.device.buffer_from_slice(self.data.as_slice())?,
            sorted_index: self
                .device
                .buffer_from_slice(self.sorted_index.as_slice())?,
            pos_in_sorted: self
                .device
                .buffer_from_slice(self.pos_in_sorted.as_slice())?,
            hash: self.hash.try_clone()?,
            load_factor: self.load_factor,
        })
    }

    /// The half-open span of *sorted-index positions* whose rows start with
    /// `prefix`, compared in **key-first** (reordered) column order — two
    /// binary searches over the sorted index, no hash probe. On a canonical
    /// identity-keyed HISA the key-first order *is* the original column
    /// order, which is how snapshot point lookups answer prefix queries of
    /// any length (the hash layer only answers full-key probes).
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is longer than the arity.
    pub fn sorted_prefix_range(&self, prefix: &[Value]) -> std::ops::Range<usize> {
        assert!(prefix.len() <= self.arity(), "prefix longer than the arity");
        let idx = self.sorted_index.as_slice();
        let lo = idx.partition_point(|&p| self.prefix_cmp(p, prefix) == std::cmp::Ordering::Less);
        let hi =
            idx.partition_point(|&p| self.prefix_cmp(p, prefix) != std::cmp::Ordering::Greater);
        lo..hi
    }

    /// The half-open span of sorted-index positions whose rows compare
    /// `>= lo` and `< hi` on their leading columns (key-first order) — the
    /// key-range scan primitive behind snapshot range queries. `lo` and
    /// `hi` may be prefixes of different lengths.
    ///
    /// # Panics
    ///
    /// Panics if either bound is longer than the arity.
    pub fn sorted_span(&self, lo: &[Value], hi: &[Value]) -> std::ops::Range<usize> {
        assert!(lo.len() <= self.arity(), "lower bound longer than arity");
        assert!(hi.len() <= self.arity(), "upper bound longer than arity");
        let idx = self.sorted_index.as_slice();
        let start = idx.partition_point(|&p| self.prefix_cmp(p, lo) == std::cmp::Ordering::Less);
        let end = idx.partition_point(|&p| self.prefix_cmp(p, hi) == std::cmp::Ordering::Less);
        start..end.max(start)
    }

    /// Rows at the given sorted-index positions, restored to original
    /// column order — pairs with [`Hisa::sorted_prefix_range`] /
    /// [`Hisa::sorted_span`] to materialize query results.
    ///
    /// # Panics
    ///
    /// Panics if the span exceeds the relation's length.
    pub fn sorted_rows(
        &self,
        span: std::ops::Range<usize>,
    ) -> impl Iterator<Item = Vec<Value>> + '_ {
        self.sorted_index.as_slice()[span]
            .iter()
            .map(|&p| self.row(p as usize))
    }

    /// Compares the leading `prefix.len()` columns of data-array row `p`
    /// (key-first order) against `prefix`.
    fn prefix_cmp(&self, p: u32, prefix: &[Value]) -> std::cmp::Ordering {
        let start = p as usize * self.arity();
        self.data.as_slice()[start..start + prefix.len()].cmp(prefix)
    }

    /// Reserves device capacity for `additional_rows` more tuples in the
    /// data array, sorted-index/inverse arrays, **and the hash layer**, so a
    /// subsequent [`Hisa::merge_from`] of up to that many rows neither grows
    /// a buffer nor rebuilds the hash table. This is the hook eager buffer
    /// management uses (paper Section 5.3): reserve `k x |delta|` rows once
    /// and amortize allocation *and* rehashing over the following
    /// iterations.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] if the extra
    /// capacity does not fit on the device.
    pub fn reserve_additional_rows(&mut self, additional_rows: usize) -> DeviceResult<()> {
        let arity = self.arity();
        let target_values = self.data.len() + additional_rows * arity;
        self.data.reserve_total(target_values)?;
        self.sorted_index
            .reserve_total(self.sorted_index.len() + additional_rows)?;
        self.pos_in_sorted
            .reserve_total(self.pos_in_sorted.len() + additional_rows)?;
        // Worst case every reserved row introduces a distinct key; growing
        // now (power-of-two) keeps the merge itself rebuild-free. The hash
        // reservation is best-effort: it is purely an optimization, so on a
        // memory-constrained device it degrades to the overflow-rebuild
        // path inside `merge_from` (exact-size tables) instead of failing
        // a run that would otherwise fit.
        if let Ok(true) = self
            .hash
            .reserve_for_keys(self.hash.entries() + additional_rows)
        {
            self.device.metrics().add_hash_rebuild();
        }
        Ok(())
    }

    /// Releases all slack capacity back to the device — the behaviour of a
    /// non-pooled allocator that sizes every buffer exactly (the
    /// eager-buffer-management-off configuration of Table 1). The hash
    /// layer shrinks back to its minimal size too (a rehash, counted as a
    /// hash rebuild) when a reservation left it over-provisioned.
    pub fn shrink_to_fit(&mut self) {
        self.data.shrink_to_fit();
        self.sorted_index.shrink_to_fit();
        self.pos_in_sorted.shrink_to_fit();
        if self.hash.shrink_to_entries() {
            self.device.metrics().add_hash_rebuild();
        }
    }

    /// Merges another HISA (typically a delta relation already known to be
    /// disjoint from `self`) into this one with cost proportional to the
    /// *delta* wherever possible — the "Indexing Full" phase of the paper's
    /// Figure 6, without its O(|full|) hash rebuild:
    ///
    /// 1. the data arrays are concatenated (rows never move, so data-array
    ///    row ids stay valid);
    /// 2. the sorted index arrays are merged with the parallel merge-path
    ///    algorithm, comparing row slices in place and folding the delta's
    ///    row offset into the merge (no shifted index copy, no per-
    ///    comparison key materialisation);
    /// 3. the inverse permutation is rewritten (same streaming cost as the
    ///    index merge it follows);
    /// 4. the hash layer absorbs **only the delta's keys** through the
    ///    atomic-min insert path — every pre-existing entry stores a row id
    ///    whose current position step 3 already refreshed. A full rebuild
    ///    happens only when [`HashTable::needs_rebuild_for`] says the load
    ///    factor would be exceeded (and is avoided entirely when
    ///    [`Hisa::reserve_additional_rows`] pre-reserved hash capacity).
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] when the merged
    /// relation or a rebuilt hash table does not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if the two HISAs have different index specifications.
    pub fn merge_from(&mut self, other: &Hisa) -> DeviceResult<()> {
        assert_eq!(
            self.spec, other.spec,
            "cannot merge HISAs with different specs"
        );
        if other.is_empty() {
            return Ok(());
        }
        let arity = self.arity();
        let old_rows = self.len();
        let delta_rows = other.len();
        // Concatenate data arrays (no deduplication needed: semi-naive
        // evaluation guarantees delta and full are disjoint).
        self.data.extend_from_slice(other.data.as_slice())?;
        // Merge sorted index arrays; other's rows live at offset old_rows,
        // which the row-slice merge folds into comparisons and output.
        let merged = {
            let _phase = PhaseTimer::new(self.device.metrics(), "merge");
            merge_sorted_index_rows(
                &self.device,
                self.sorted_index.as_slice(),
                other.sorted_index.as_slice(),
                self.data.as_slice(),
                arity,
                old_rows as u32,
            )
        };
        let merged_len = merged.len();
        debug_assert_eq!(merged_len * arity, self.data.len());
        let mut new_index = self.device.buffer_from_vec(merged)?;
        std::mem::swap(&mut self.sorted_index, &mut new_index);
        drop(new_index);
        let _phase = PhaseTimer::new(self.device.metrics(), "index");
        // Every position at or after the first delta insertion shifted, so
        // the inverse permutation is rewritten wholesale — an O(|full|)
        // streaming pass, like the index merge above, but confined to the
        // sorted-index layer.
        self.pos_in_sorted.resize(merged_len, 0)?;
        invert_permutation_into(
            &self.device,
            self.sorted_index.as_slice(),
            self.pos_in_sorted.as_mut_slice(),
        );
        // Hash maintenance: delta keys only, unless the load factor would
        // be exceeded (then a from-scratch rebuild resizes the table).
        if self.hash.needs_rebuild_for(delta_rows) {
            self.device.metrics().add_hash_rebuild();
            self.hash = build_hash_layer(
                &self.device,
                &self.spec,
                &self.data,
                &self.sorted_index,
                self.pos_in_sorted.as_slice(),
                self.load_factor,
            )?;
        } else {
            let key_arity = self.spec.key_arity();
            let data_slice = self.data.as_slice();
            let pos_slice = self.pos_in_sorted.as_slice();
            self.hash.insert_batch_min_by(
                delta_rows,
                |i| {
                    let row = (old_rows + i) * arity;
                    hash_key(&data_slice[row..row + key_arity])
                },
                |i| (old_rows + i) as u32,
                |row| pos_slice[row as usize],
            );
        }
        Ok(())
    }
}

/// Builds the open-addressing hash layer mapping each key's hash to the
/// data-array row holding its smallest sorted-index position (paper
/// Algorithm 2 with row-id values), shared by every construction path.
///
/// Values are row ids rather than positions so that later *incremental*
/// merges ([`Hisa::merge_from`]) can leave every pre-existing entry
/// untouched: rows are stable across merges, and the entry's current
/// position is recovered through `pos_in_sorted` at query time.
fn build_hash_layer(
    device: &Device,
    spec: &IndexSpec,
    data: &DeviceBuffer<Value>,
    sorted_index: &DeviceBuffer<u32>,
    pos_in_sorted: &[u32],
    load_factor: f64,
) -> DeviceResult<HashTable> {
    let rows = sorted_index.len();
    let arity = spec.arity();
    let key_arity = spec.key_arity();
    let mut hash = HashTable::with_capacity(device, rows, load_factor)?;
    let data_slice = data.as_slice();
    let sorted_slice = sorted_index.as_slice();
    hash.build_parallel_min_by(
        rows,
        |p| {
            let row = sorted_slice[p] as usize;
            hash_key(&data_slice[row * arity..row * arity + key_arity])
        },
        |p| sorted_slice[p],
        |row| pos_in_sorted[row as usize],
    );
    Ok(hash)
}

/// Iterator over the data-array row ids matching one key; produced by
/// [`Hisa::range_query`].
#[derive(Debug)]
pub struct RangeQuery<'a> {
    hisa: &'a Hisa,
    key: Vec<Value>,
    position: usize,
}

impl<'a> Iterator for RangeQuery<'a> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let arity = self.hisa.arity();
        let key_arity = self.key.len();
        let sorted = self.hisa.sorted_index.as_slice();
        let data = self.hisa.data.as_slice();
        while self.position < sorted.len() {
            let row = sorted[self.position] as usize;
            let prefix = &data[row * arity..row * arity + key_arity];
            self.position += 1;
            match prefix.cmp(self.key.as_slice()) {
                std::cmp::Ordering::Equal => return Some(row as u32),
                std::cmp::Ordering::Greater => {
                    // Sorted order: once past the key, no more matches.
                    self.position = sorted.len();
                    return None;
                }
                std::cmp::Ordering::Less => {
                    // Hash collision landed us slightly early; keep scanning.
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn edge_spec() -> IndexSpec {
        IndexSpec::new(2, vec![0])
    }

    #[test]
    fn build_deduplicates_and_sorts() {
        let d = device();
        let tuples = [3u32, 4, 1, 2, 3, 4, 1, 2, 2, 9];
        let h = Hisa::build(&d, edge_spec(), &tuples).unwrap();
        assert_eq!(h.len(), 3);
        assert_eq!(
            h.to_sorted_tuples(),
            vec![vec![1, 2], vec![2, 9], vec![3, 4]]
        );
    }

    #[test]
    fn empty_relation_behaves() {
        let d = device();
        let h = Hisa::empty(&d, edge_spec()).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.range_query(&[5]).count(), 0);
        assert!(!h.contains(&[1, 2]));
    }

    #[test]
    fn range_query_returns_all_matches_and_only_matches() {
        let d = device();
        let tuples = [
            0u32, 1, 0, 2, 1, 3, 1, 4, 1, 5, 2, 6, //
        ];
        let h = Hisa::build(&d, edge_spec(), &tuples).unwrap();
        let hits: Vec<Vec<u32>> = h.range_query(&[1]).map(|r| h.row(r as usize)).collect();
        let mut got = hits;
        got.sort();
        assert_eq!(got, vec![vec![1, 3], vec![1, 4], vec![1, 5]]);
        assert_eq!(h.range_query(&[9]).count(), 0);
    }

    #[test]
    fn range_query_with_multi_column_key() {
        let d = device();
        // 3-arity, keyed on columns (0, 1).
        let spec = IndexSpec::new(3, vec![0, 1]);
        let tuples = [1u32, 2, 10, 1, 2, 20, 1, 3, 30, 2, 2, 40];
        let h = Hisa::build(&d, spec, &tuples).unwrap();
        let mut vals: Vec<u32> = h
            .range_query(&[1, 2])
            .map(|r| h.row(r as usize)[2])
            .collect();
        vals.sort();
        assert_eq!(vals, vec![10, 20]);
    }

    #[test]
    fn key_columns_not_in_front_are_reordered_transparently() {
        let d = device();
        // Key on the *second* column of Edge(from, to).
        let spec = IndexSpec::new(2, vec![1]);
        let tuples = [1u32, 9, 2, 9, 3, 7];
        let h = Hisa::build(&d, spec, &tuples).unwrap();
        let mut froms: Vec<u32> = h.range_query(&[9]).map(|r| h.row(r as usize)[0]).collect();
        froms.sort();
        assert_eq!(froms, vec![1, 2]);
        assert!(h.contains(&[3, 7]));
        assert!(!h.contains(&[7, 3]));
    }

    #[test]
    fn contains_checks_whole_tuple() {
        let d = device();
        let h = Hisa::build(&d, edge_spec(), &[5, 6, 5, 7]).unwrap();
        assert!(h.contains(&[5, 6]));
        assert!(h.contains(&[5, 7]));
        assert!(!h.contains(&[5, 8]));
        assert!(!h.contains(&[6, 5]));
    }

    #[test]
    fn merge_concatenates_disjoint_relations() {
        let d = device();
        let mut full = Hisa::build(&d, edge_spec(), &[1, 2, 3, 4]).unwrap();
        let delta = Hisa::build(&d, edge_spec(), &[2, 3, 0, 1]).unwrap();
        full.merge_from(&delta).unwrap();
        assert_eq!(full.len(), 4);
        assert_eq!(
            full.to_sorted_tuples(),
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4]]
        );
        // Range queries still work across the merge boundary.
        assert_eq!(full.range_query(&[2]).count(), 1);
        assert!(full.contains(&[0, 1]));
    }

    #[test]
    fn merge_with_empty_delta_is_a_no_op() {
        let d = device();
        let mut full = Hisa::build(&d, edge_spec(), &[1, 2]).unwrap();
        let delta = Hisa::empty(&d, edge_spec()).unwrap();
        full.merge_from(&delta).unwrap();
        assert_eq!(full.len(), 1);
    }

    #[test]
    fn repeated_merges_preserve_sorted_index_invariant() {
        let d = device();
        let mut full = Hisa::build(&d, edge_spec(), &[10, 1]).unwrap();
        for step in 0..5u32 {
            let delta = Hisa::build(&d, edge_spec(), &[step, step + 100]).unwrap();
            full.merge_from(&delta).unwrap();
        }
        let sorted = full.to_sorted_tuples();
        let mut expected = sorted.clone();
        expected.sort();
        assert_eq!(sorted, expected, "sorted index must stay sorted");
        assert_eq!(full.len(), 6);
    }

    #[test]
    fn figure2_style_relation_indexes_by_two_columns() {
        // Mirrors Figure 2: a 3-arity relation with 2 join columns.
        let d = device();
        let spec = IndexSpec::new(3, vec![0, 1]);
        let tuples = [
            1u32, 2, 2, 1, 2, 5, 2, 3, 1, 3, 4, 1, 4, 4, 2, 5, 2, 0, 5, 2, 9,
        ];
        let h = Hisa::build(&d, spec, &tuples).unwrap();
        assert_eq!(h.len(), 7);
        let mut last: Vec<u32> = h
            .range_query(&[5, 2])
            .map(|r| h.row(r as usize)[2])
            .collect();
        last.sort();
        assert_eq!(last, vec![0, 9]);
        assert_eq!(h.range_query(&[4, 4]).count(), 1);
    }

    #[test]
    fn reserve_and_shrink_round_trip_device_accounting() {
        let d = device();
        let mut h = Hisa::build(&d, edge_spec(), &[1, 2, 3, 4]).unwrap();
        let baseline = d.tracker().in_use();
        h.reserve_additional_rows(1000).unwrap();
        assert!(d.tracker().in_use() > baseline);
        h.shrink_to_fit();
        assert!(d.tracker().in_use() <= baseline + 64);
        // The relation itself is untouched.
        assert_eq!(h.len(), 2);
        assert!(h.contains(&[1, 2]));
    }

    #[test]
    fn merge_after_reserve_does_not_grow_again() {
        let d = device();
        let mut full = Hisa::build(&d, edge_spec(), &[1, 2]).unwrap();
        full.reserve_additional_rows(16).unwrap();
        let reserved = d.tracker().in_use();
        let delta = Hisa::build(&d, edge_spec(), &[3, 4, 5, 6]).unwrap();
        let delta_bytes = delta.device_bytes();
        full.merge_from(&delta).unwrap();
        // The merged full may rebuild its hash table and sorted index, but the
        // data array itself must not have re-grown beyond the reservation.
        assert_eq!(full.len(), 3);
        let _ = (reserved, delta_bytes);
    }

    #[test]
    fn try_clone_is_byte_identical_and_independent() {
        let d = device();
        let mut original = Hisa::build(&d, edge_spec(), &[3, 4, 1, 2, 3, 7, 0, 9]).unwrap();
        let in_use_before = d.tracker().in_use();
        let copy = original.try_clone().unwrap();
        assert_eq!(copy.data(), original.data());
        assert_eq!(copy.sorted_index(), original.sorted_index());
        assert_eq!(copy.len(), original.len());
        for probe in 0..10u32 {
            assert_eq!(
                copy.key_start_position(&[probe]),
                original.key_start_position(&[probe]),
                "probe {probe}"
            );
        }
        assert!(
            d.tracker().in_use() >= in_use_before + copy.device_bytes(),
            "the copy's layers must be charged against the device"
        );
        // Merging into the original must not disturb the copy.
        let delta =
            Hisa::build_reindexed_from_sorted_unique(&d, edge_spec(), &[5, 5], 0.8).unwrap();
        original.merge_from(&delta).unwrap();
        assert_eq!(original.len(), 5);
        assert_eq!(copy.len(), 4);
        assert!(!copy.contains(&[5, 5]));
    }

    #[test]
    fn sorted_prefix_range_and_span_answer_point_and_range_queries() {
        let d = device();
        let tuples = [
            0u32, 9, //
            1, 4, //
            1, 7, //
            3, 2, //
            3, 5, //
            3, 8, //
            6, 1, //
        ];
        let h = Hisa::build(&d, IndexSpec::full_key(2), &tuples).unwrap();
        // Full-row prefix: exact membership.
        assert_eq!(h.sorted_prefix_range(&[3, 5]).len(), 1);
        assert_eq!(h.sorted_prefix_range(&[3, 6]).len(), 0);
        // One-column prefix: a point lookup on the leading key.
        let threes: Vec<Vec<u32>> = h.sorted_rows(h.sorted_prefix_range(&[3])).collect();
        assert_eq!(threes, vec![vec![3, 2], vec![3, 5], vec![3, 8]]);
        assert_eq!(h.sorted_prefix_range(&[2]).len(), 0);
        // Empty prefix covers everything.
        assert_eq!(h.sorted_prefix_range(&[]), 0..7);
        // Key-range scan: [1, 3) on the first column, then a mixed-depth
        // span reaching into the second column.
        let scanned: Vec<Vec<u32>> = h.sorted_rows(h.sorted_span(&[1], &[3])).collect();
        assert_eq!(scanned, vec![vec![1, 4], vec![1, 7]]);
        let deep: Vec<Vec<u32>> = h.sorted_rows(h.sorted_span(&[3, 5], &[6])).collect();
        assert_eq!(deep, vec![vec![3, 5], vec![3, 8]]);
        // An inverted range is empty, not a panic.
        assert_eq!(h.sorted_span(&[6], &[1]).len(), 0);
    }

    #[test]
    fn device_bytes_accounts_all_three_layers() {
        let d = device();
        let h = Hisa::build(&d, edge_spec(), &[1, 2, 3, 4, 5, 6]).unwrap();
        assert!(h.device_bytes() > 0);
        assert!(d.tracker().in_use() >= h.device_bytes());
    }

    #[test]
    fn build_from_sorted_unique_matches_general_build() {
        let d = device();
        // Already sorted, unique, key-first (key = column 0, identity perm).
        let tuples = [1u32, 2, 2, 9, 3, 4, 3, 7];
        let fast = Hisa::build_from_sorted_unique(&d, edge_spec(), &tuples, 0.8).unwrap();
        let general = Hisa::build(&d, edge_spec(), &tuples).unwrap();
        assert_eq!(fast.to_sorted_tuples(), general.to_sorted_tuples());
        assert_eq!(fast.range_query(&[3]).count(), 2);
        assert!(fast.contains(&[2, 9]));
        assert!(!fast.contains(&[9, 2]));
    }

    #[test]
    fn build_from_sorted_unique_of_empty_input() {
        let d = device();
        let h = Hisa::build_from_sorted_unique(&d, edge_spec(), &[], 0.8).unwrap();
        assert!(h.is_empty());
        assert_eq!(h.range_query(&[1]).count(), 0);
    }

    #[test]
    fn reindexed_build_agrees_with_general_build_on_secondary_keys() {
        let d = device();
        // Identity-sorted unique tuples; re-key on the second column.
        let tuples = [0u32, 9, 1, 4, 2, 9, 3, 4, 4, 1];
        for key in [vec![1usize], vec![1, 0]] {
            let spec = IndexSpec::new(2, key.clone());
            let fast =
                Hisa::build_reindexed_from_sorted_unique(&d, spec.clone(), &tuples, 0.8).unwrap();
            let general = Hisa::build(&d, spec, &tuples).unwrap();
            assert_eq!(
                fast.to_sorted_tuples(),
                general.to_sorted_tuples(),
                "key {key:?}"
            );
        }
        let spec = IndexSpec::new(2, vec![1]);
        let fast = Hisa::build_reindexed_from_sorted_unique(&d, spec, &tuples, 0.8).unwrap();
        let mut froms: Vec<u32> = fast
            .range_query(&[9])
            .map(|r| fast.row(r as usize)[0])
            .collect();
        froms.sort();
        assert_eq!(froms, vec![0, 2]);
    }

    #[test]
    fn reindexed_build_supports_wider_arities_and_multi_column_keys() {
        let d = device();
        // Arity 3, identity-sorted, unique; key on columns (2, 0).
        let tuples = [
            0u32, 5, 1, //
            1, 4, 1, //
            1, 4, 2, //
            2, 0, 1, //
            2, 1, 1, //
        ];
        let spec = IndexSpec::new(3, vec![2, 0]);
        let fast =
            Hisa::build_reindexed_from_sorted_unique(&d, spec.clone(), &tuples, 0.8).unwrap();
        let general = Hisa::build(&d, spec, &tuples).unwrap();
        assert_eq!(fast.to_sorted_tuples(), general.to_sorted_tuples());
        assert_eq!(fast.range_query(&[1, 2]).count(), 2);
    }

    #[test]
    fn run_coalesced_build_is_byte_identical_to_chained_merges() {
        let d = device();
        for key in [vec![0usize], vec![1], vec![1, 0]] {
            let spec = IndexSpec::new(2, key.clone());
            // Disjoint identity-sorted runs, as the pipelined diff produces.
            let r1: &[u32] = &[0, 5, 2, 1, 7, 7];
            let r2: &[u32] = &[1, 1, 3, 9];
            let r3: &[u32] = &[4, 0, 6, 2, 8, 8];
            let coalesced =
                Hisa::build_from_sorted_unique_runs(&d, spec.clone(), &[r1, &[], r2, r3], 0.8)
                    .unwrap();
            let mut chained =
                Hisa::build_reindexed_from_sorted_unique(&d, spec.clone(), r1, 0.8).unwrap();
            for run in [r2, r3] {
                let part =
                    Hisa::build_reindexed_from_sorted_unique(&d, spec.clone(), run, 0.8).unwrap();
                chained.merge_from(&part).unwrap();
            }
            assert_eq!(coalesced.data(), chained.data(), "key {key:?}");
            assert_eq!(
                coalesced.sorted_index(),
                chained.sorted_index(),
                "key {key:?}"
            );
            for probe in 0..10u32 {
                let probe_key: Vec<u32> = key.iter().map(|_| probe).collect();
                assert_eq!(
                    coalesced.key_start_position(&probe_key),
                    chained.key_start_position(&probe_key),
                    "key {key:?} probe {probe}"
                );
            }
        }
        // All-empty input degenerates to an empty HISA.
        let empty = Hisa::build_from_sorted_unique_runs(&d, edge_spec(), &[&[], &[]], 0.8).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn merged_hisa_accepts_reindexed_deltas() {
        let d = device();
        let spec = IndexSpec::new(2, vec![1]);
        let mut full =
            Hisa::build_reindexed_from_sorted_unique(&d, spec.clone(), &[1, 2, 3, 4], 0.8).unwrap();
        let delta = Hisa::build_reindexed_from_sorted_unique(&d, spec, &[0, 2, 5, 4], 0.8).unwrap();
        full.merge_from(&delta).unwrap();
        assert_eq!(full.len(), 4);
        assert_eq!(full.range_query(&[2]).count(), 2);
        assert_eq!(full.range_query(&[4]).count(), 2);
        let sorted = full.to_sorted_tuples();
        let mut expected = sorted.clone();
        expected.sort_by_key(|t| (t[1], t[0]));
        assert_eq!(sorted, expected, "sorted index must follow the key order");
    }

    #[test]
    fn build_from_batch_dispatches_on_the_sorted_unique_flag() {
        let d = device();
        // Sorted-unique batch + identity permutation: fast path.
        let sorted = TupleBatch::from_sorted_unique_flat(2, vec![1, 2, 2, 9, 3, 4]);
        let fast = Hisa::build_from_batch(&d, edge_spec(), &sorted, 0.8).unwrap();
        // Unsorted batch: general path must sort and deduplicate.
        let messy = TupleBatch::new(2, vec![3, 4, 1, 2, 2, 9, 1, 2]);
        let general = Hisa::build_from_batch(&d, edge_spec(), &messy, 0.8).unwrap();
        assert_eq!(fast.to_sorted_tuples(), general.to_sorted_tuples());
        // Sorted-unique batch under a *permuted* spec cannot take the fast
        // path (original order is not key-first order there).
        let spec = IndexSpec::new(2, vec![1]);
        let permuted = Hisa::build_from_batch(&d, spec.clone(), &sorted, 0.8).unwrap();
        let reference = Hisa::build(&d, spec, sorted.as_flat()).unwrap();
        assert_eq!(permuted.to_sorted_tuples(), reference.to_sorted_tuples());
    }

    #[test]
    fn merge_with_reserved_headroom_performs_zero_hash_rebuilds() {
        let d = device();
        let mut full = Hisa::build(&d, edge_spec(), &[1, 2, 3, 4]).unwrap();
        // Headroom for every delta below: the merge loop must stay on the
        // incremental path, inserting exactly Σ|delta| keys.
        full.reserve_additional_rows(64).unwrap();
        let before = d.metrics().snapshot();
        let mut merged_rows = 0u64;
        for step in 0..8u32 {
            let delta = Hisa::build(
                &d,
                edge_spec(),
                &[100 + step, step, 200 + step, step], // 2 rows per delta
            )
            .unwrap();
            merged_rows += delta.len() as u64;
            full.merge_from(&delta).unwrap();
        }
        let spent = d.metrics().snapshot().since(&before);
        assert_eq!(spent.hash_rebuilds, 0, "headroom must avoid all rebuilds");
        assert_eq!(
            spent.hash_inserts, merged_rows,
            "hash writes must be proportional to Σ|delta|"
        );
        assert_eq!(full.len(), 2 + merged_rows as usize);
        for step in 0..8u32 {
            assert!(full.contains(&[100 + step, step]));
            assert!(full.contains(&[200 + step, step]));
        }
    }

    #[test]
    fn overloaded_merge_rebuilds_the_hash_layer_and_stays_correct() {
        let d = device();
        // Tiny full: its hash table is minimal (8 slots), so a 100-row
        // delta must trip the load factor and take the rebuild path.
        let mut full = Hisa::build(&d, edge_spec(), &[1, 2]).unwrap();
        let delta_tuples: Vec<u32> = (0..100u32).flat_map(|i| [i + 10, i]).collect();
        let delta = Hisa::build(&d, edge_spec(), &delta_tuples).unwrap();
        let before = d.metrics().snapshot();
        full.merge_from(&delta).unwrap();
        assert!(
            d.metrics().snapshot().since(&before).hash_rebuilds >= 1,
            "an overflowing merge must rebuild"
        );
        // The rebuilt layer answers exactly like a fresh general build.
        let mut union = vec![1u32, 2];
        union.extend_from_slice(&delta_tuples);
        let fresh = Hisa::build(&d, edge_spec(), &union).unwrap();
        assert_eq!(full.to_sorted_tuples(), fresh.to_sorted_tuples());
        for key in 0..120u32 {
            assert_eq!(
                full.key_start_position(&[key]),
                fresh.key_start_position(&[key]),
                "key {key}"
            );
        }
    }

    #[test]
    fn incremental_merges_are_lookup_for_lookup_identical_to_fresh_builds() {
        let d = device();
        // Interleave same-key tuples across full and deltas so merges both
        // add new keys and lower existing keys' first positions.
        let mut full = Hisa::build(&d, edge_spec(), &[5, 0, 9, 1]).unwrap();
        full.reserve_additional_rows(256).unwrap();
        let mut union: Vec<u32> = vec![5, 0, 9, 1];
        for step in 1..6u32 {
            let delta_tuples: Vec<u32> = (0..10u32)
                .flat_map(|i| [(i * 7 + step) % 13, 50 + step * 10 + i])
                .collect();
            // Deduplicate against what's already merged (semi-naive
            // contract: delta and full are disjoint).
            let fresh_rows: Vec<u32> = delta_tuples
                .chunks(2)
                .filter(|row| !full.contains(row))
                .flatten()
                .copied()
                .collect();
            if fresh_rows.is_empty() {
                continue;
            }
            let delta = Hisa::build(&d, edge_spec(), &fresh_rows).unwrap();
            full.merge_from(&delta).unwrap();
            union.extend_from_slice(&fresh_rows);
        }
        let fresh = Hisa::build(&d, edge_spec(), &union).unwrap();
        assert_eq!(full.to_sorted_tuples(), fresh.to_sorted_tuples());
        for key in 0..16u32 {
            assert_eq!(
                full.key_start_position(&[key]),
                fresh.key_start_position(&[key]),
                "start position for key {key}"
            );
            let a: Vec<Vec<u32>> = full
                .range_query(&[key])
                .map(|r| full.row(r as usize))
                .collect();
            let b: Vec<Vec<u32>> = fresh
                .range_query(&[key])
                .map(|r| fresh.row(r as usize))
                .collect();
            let (mut a, mut b) = (a, b);
            a.sort();
            b.sort();
            assert_eq!(a, b, "range query for key {key}");
        }
    }

    #[test]
    #[should_panic(expected = "key arity mismatch")]
    fn range_query_rejects_wrong_key_arity() {
        let d = device();
        let h = Hisa::build(&d, edge_spec(), &[1, 2]).unwrap();
        let _ = h.range_query(&[1, 2]).count();
    }
}
