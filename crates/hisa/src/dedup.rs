//! Deduplication over sorted index arrays (paper Section 4.2).
//!
//! Once tuples are lexicographically sorted, duplicates are adjacent; a
//! parallel adjacent-comparison pass marks the first occurrence of each
//! distinct tuple and a compaction keeps only those positions.

use gpulog_device::thrust::transform::{adjacent_unique_flags, compact_indices};
use gpulog_device::Device;

/// Returns the subsequence of `sorted_indices` that keeps exactly one
/// occurrence (the first, preserving sort order) of every distinct tuple.
///
/// `data` is row-major with `arity` columns; `sorted_indices` must order the
/// referenced rows lexicographically (equal rows adjacent).
pub fn unique_sorted_positions(
    device: &Device,
    data: &[u32],
    arity: usize,
    sorted_indices: &[u32],
) -> Vec<u32> {
    if sorted_indices.is_empty() {
        return Vec::new();
    }
    let flags = adjacent_unique_flags(device, data, arity, sorted_indices);
    let kept = compact_indices(device, sorted_indices.len(), |i| flags[i]);
    kept.into_iter()
        .map(|pos| sorted_indices[pos as usize])
        .collect()
}

/// Counts the number of distinct tuples referenced by a sorted index array.
pub fn count_distinct(
    device: &Device,
    data: &[u32],
    arity: usize,
    sorted_indices: &[u32],
) -> usize {
    if sorted_indices.is_empty() {
        return 0;
    }
    adjacent_unique_flags(device, data, arity, sorted_indices)
        .into_iter()
        .filter(|&f| f)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn removes_adjacent_duplicates_keeping_first() {
        let d = device();
        // rows: 0:(1,1) 1:(2,2) 2:(1,1) 3:(3,3)  sorted order: 0,2,1,3
        let data = vec![1u32, 1, 2, 2, 1, 1, 3, 3];
        let sorted = vec![0u32, 2, 1, 3];
        let unique = unique_sorted_positions(&d, &data, 2, &sorted);
        assert_eq!(unique, vec![0, 1, 3]);
        assert_eq!(count_distinct(&d, &data, 2, &sorted), 3);
    }

    #[test]
    fn all_identical_rows_collapse_to_one() {
        let d = device();
        let data = vec![9u32, 9, 9, 9, 9, 9];
        let sorted = vec![0u32, 1, 2];
        assert_eq!(unique_sorted_positions(&d, &data, 2, &sorted), vec![0]);
        assert_eq!(count_distinct(&d, &data, 2, &sorted), 1);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let d = device();
        assert!(unique_sorted_positions(&d, &[], 2, &[]).is_empty());
        assert_eq!(count_distinct(&d, &[], 2, &[]), 0);
    }

    #[test]
    fn distinct_rows_are_all_kept() {
        let d = device();
        let data = vec![1u32, 0, 2, 0, 3, 0];
        let sorted = vec![0u32, 1, 2];
        assert_eq!(
            unique_sorted_positions(&d, &data, 2, &sorted),
            vec![0, 1, 2]
        );
    }
}
