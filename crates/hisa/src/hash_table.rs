//! The open-addressing hash table layer of HISA (paper Section 4.3).
//!
//! Keys are 64-bit hashes of a tuple's join-column values; values are the
//! *smallest* position in the sorted index array holding a tuple with those
//! join-column values. Construction is lock-free and data-parallel: slots
//! are claimed with compare-and-swap and values are lowered with an atomic
//! minimum, exactly as in the paper's Algorithm 2.

use gpulog_device::atomic::{atomic_min_u32, claim_key_slot, EMPTY_KEY, EMPTY_VALUE};
use gpulog_device::{Device, DeviceResult};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Default hash-table load factor (the paper runs HISA at 0.8, Section 6.4).
pub const DEFAULT_LOAD_FACTOR: f64 = 0.8;

/// Lock-free open-addressing hash table with linear probing.
#[derive(Debug)]
pub struct HashTable {
    keys: Vec<AtomicU64>,
    values: Vec<AtomicU32>,
    capacity: usize,
    entries: usize,
    load_factor: f64,
    device: Device,
    accounted_bytes: usize,
}

impl HashTable {
    /// Creates a table sized for `expected_keys` distinct keys at the given
    /// load factor.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] if the table does
    /// not fit on the device.
    ///
    /// # Panics
    ///
    /// Panics if `load_factor` is not in `(0, 1]`.
    pub fn with_capacity(
        device: &Device,
        expected_keys: usize,
        load_factor: f64,
    ) -> DeviceResult<Self> {
        assert!(
            load_factor > 0.0 && load_factor <= 1.0,
            "load factor must be in (0, 1]"
        );
        let capacity = ((expected_keys.max(1) as f64 / load_factor).ceil() as usize)
            .next_power_of_two()
            .max(8);
        let bytes = capacity * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        device.tracker().allocate(bytes, false)?;
        device.metrics().add_bytes_written(bytes as u64);
        let keys = (0..capacity).map(|_| AtomicU64::new(EMPTY_KEY)).collect();
        let values = (0..capacity).map(|_| AtomicU32::new(EMPTY_VALUE)).collect();
        Ok(HashTable {
            keys,
            values,
            capacity,
            entries: 0,
            load_factor,
            device: device.clone(),
            accounted_bytes: bytes,
        })
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct keys inserted (approximate under concurrency; the
    /// exact count is refreshed by [`HashTable::recount_entries`]).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The load factor the table was sized for.
    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Bytes charged against the device for this table.
    pub fn accounted_bytes(&self) -> usize {
        self.accounted_bytes
    }

    /// Whether inserting `additional` more distinct keys would push the table
    /// past its configured load factor.
    pub fn needs_rebuild_for(&self, additional: usize) -> bool {
        (self.entries + additional) as f64 > self.capacity as f64 * self.load_factor
    }

    /// Inserts `(key_hash, position)` — claims a slot for the key if absent
    /// and lowers the stored position to the minimum seen (Algorithm 2).
    ///
    /// Safe to call concurrently from many device threads.
    pub fn insert(&self, key_hash: u64, position: u32) {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            match claim_key_slot(&self.keys[slot], key_hash) {
                Ok(()) => {
                    atomic_min_u32(&self.values[slot], position);
                    return;
                }
                Err(_other_key) => {
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Looks up a key hash, returning the smallest sorted-index position
    /// associated with it.
    pub fn lookup(&self, key_hash: u64) -> Option<u32> {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            let k = self.keys[slot].load(Ordering::Acquire);
            if k == key_hash {
                let v = self.values[slot].load(Ordering::Acquire);
                return if v == EMPTY_VALUE { None } else { Some(v) };
            }
            if k == EMPTY_KEY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Data-parallel bulk construction: for every position `p` in
    /// `0..positions`, inserts `(key_hash_of(p), p)` using one simulated
    /// device thread per position.
    pub fn build_parallel<F>(&mut self, positions: usize, key_hash_of: F)
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let metrics = self.device.metrics();
        metrics.add_atomic_ops(positions as u64 * 2);
        metrics.add_bytes_read(positions as u64 * 16);
        let this = &*self;
        self.device.launch("index", positions, |p| {
            this.insert(key_hash_of(p), p as u32);
        });
        self.recount_entries();
    }

    /// Recounts the number of occupied slots (used after bulk insertion).
    pub fn recount_entries(&mut self) {
        self.entries = self
            .keys
            .iter()
            .filter(|k| k.load(Ordering::Relaxed) != EMPTY_KEY)
            .count();
    }

    /// Iterates over the occupied `(key_hash, position)` pairs.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter_map(|(k, v)| {
                let key = k.load(Ordering::Relaxed);
                if key == EMPTY_KEY {
                    None
                } else {
                    Some((key, v.load(Ordering::Relaxed)))
                }
            })
    }
}

impl Drop for HashTable {
    fn drop(&mut self) {
        self.device.tracker().free(self.accounted_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let d = device();
        let t = HashTable::with_capacity(&d, 100, 0.8).unwrap();
        t.insert(42, 7);
        t.insert(99, 3);
        assert_eq!(t.lookup(42), Some(7));
        assert_eq!(t.lookup(99), Some(3));
        assert_eq!(t.lookup(1000), None);
    }

    #[test]
    fn insert_keeps_smallest_position() {
        let d = device();
        let t = HashTable::with_capacity(&d, 10, 0.8).unwrap();
        t.insert(5, 20);
        t.insert(5, 7);
        t.insert(5, 30);
        assert_eq!(t.lookup(5), Some(7));
    }

    #[test]
    fn linear_probing_resolves_collisions() {
        let d = device();
        let t = HashTable::with_capacity(&d, 4, 1.0).unwrap();
        let cap = t.capacity() as u64;
        // Keys that collide modulo the capacity.
        t.insert(3, 1);
        t.insert(3 + cap, 2);
        t.insert(3 + 2 * cap, 3);
        assert_eq!(t.lookup(3), Some(1));
        assert_eq!(t.lookup(3 + cap), Some(2));
        assert_eq!(t.lookup(3 + 2 * cap), Some(3));
    }

    #[test]
    fn parallel_build_finds_minimum_position_per_key() {
        let d = device();
        let n = 10_000usize;
        // 100 distinct keys, each appearing 100 times; smallest position for
        // key k is k itself (positions are assigned round-robin).
        let mut t = HashTable::with_capacity(&d, 100, 0.8).unwrap();
        t.build_parallel(n, |p| (p % 100) as u64 + 1);
        for k in 0..100u64 {
            assert_eq!(t.lookup(k + 1), Some(k as u32));
        }
        assert_eq!(t.entries(), 100);
    }

    #[test]
    fn capacity_respects_load_factor() {
        let d = device();
        let t = HashTable::with_capacity(&d, 80, 0.8).unwrap();
        assert!(t.capacity() >= 100);
        assert!(!t.needs_rebuild_for(0));
    }

    #[test]
    fn drop_releases_device_memory() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 16));
        let before = d.tracker().in_use();
        {
            let _t = HashTable::with_capacity(&d, 1000, 0.8).unwrap();
            assert!(d.tracker().in_use() > before);
        }
        assert_eq!(d.tracker().in_use(), before);
    }

    #[test]
    fn oversized_table_is_oom() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 10));
        assert!(HashTable::with_capacity(&d, 1 << 20, 0.8).is_err());
    }

    #[test]
    fn iter_entries_reports_inserted_pairs() {
        let d = device();
        let t = HashTable::with_capacity(&d, 10, 0.8).unwrap();
        t.insert(11, 1);
        t.insert(22, 2);
        let mut entries: Vec<(u64, u32)> = t.iter_entries().collect();
        entries.sort();
        assert_eq!(entries, vec![(11, 1), (22, 2)]);
    }
}
