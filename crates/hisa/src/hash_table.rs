//! The open-addressing hash table layer of HISA (paper Section 4.3).
//!
//! Keys are 64-bit hashes of a tuple's join-column values; values are
//! opaque 32-bit payloads with "keep the minimum" semantics — either raw
//! positions lowered with an atomic minimum ([`HashTable::insert`], the
//! paper's Algorithm 2 verbatim), or, as HISA now uses them, stable
//! data-array row ids ranked through a caller-supplied position closure
//! ([`HashTable::insert_min_by`]), which is what makes *incremental*
//! maintenance possible: merged-in deltas insert only their own keys
//! ([`HashTable::insert_batch_min_by`]) while every existing entry stays
//! valid. Construction is lock-free and data-parallel: slots are claimed
//! with compare-and-swap and values lowered with CAS loops.

use gpulog_device::atomic::{atomic_min_u32, claim_key_slot, EMPTY_KEY, EMPTY_VALUE};
use gpulog_device::{Device, DeviceResult};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Default hash-table load factor (the paper runs HISA at 0.8, Section 6.4).
pub const DEFAULT_LOAD_FACTOR: f64 = 0.8;

/// Lock-free open-addressing hash table with linear probing.
#[derive(Debug)]
pub struct HashTable {
    keys: Vec<AtomicU64>,
    values: Vec<AtomicU32>,
    capacity: usize,
    entries: usize,
    load_factor: f64,
    device: Device,
    accounted_bytes: usize,
}

impl HashTable {
    /// Creates a table sized for `expected_keys` distinct keys at the given
    /// load factor.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::InvalidLoadFactor`] if
    /// `load_factor` is outside `(0, 1]` — including zero, negatives, NaN,
    /// and infinities, any of which would size a zero-slot or absurdly
    /// oversized table — and
    /// [`gpulog_device::DeviceError::OutOfMemory`] if the table does not
    /// fit on the device.
    pub fn with_capacity(
        device: &Device,
        expected_keys: usize,
        load_factor: f64,
    ) -> DeviceResult<Self> {
        // NaN fails both comparisons, so it lands here too.
        if !(load_factor > 0.0 && load_factor <= 1.0) {
            return Err(gpulog_device::DeviceError::InvalidLoadFactor {
                value: format!("{load_factor}"),
            });
        }
        let capacity = Self::capacity_for(expected_keys, load_factor);
        let bytes = capacity * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>());
        device.tracker().allocate(bytes, false)?;
        device.metrics().add_bytes_written(bytes as u64);
        let keys = (0..capacity).map(|_| AtomicU64::new(EMPTY_KEY)).collect();
        let values = (0..capacity).map(|_| AtomicU32::new(EMPTY_VALUE)).collect();
        Ok(HashTable {
            keys,
            values,
            capacity,
            entries: 0,
            load_factor,
            device: device.clone(),
            accounted_bytes: bytes,
        })
    }

    /// Deep-copies the table: a fresh device allocation holding the same
    /// slots. Snapshot publication relies on this to detach a shared hash
    /// layer before mutating it (copy-on-write), so the copy must be
    /// byte-identical — every claimed slot keeps its key hash and payload,
    /// and probing order is preserved because capacity is carried over.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] if the device
    /// cannot hold a second copy of the table.
    pub fn try_clone(&self) -> DeviceResult<Self> {
        self.device
            .tracker()
            .allocate(self.accounted_bytes, false)?;
        self.device
            .metrics()
            .add_bytes_written(self.accounted_bytes as u64);
        let keys = self
            .keys
            .iter()
            .map(|k| AtomicU64::new(k.load(Ordering::Relaxed)))
            .collect();
        let values = self
            .values
            .iter()
            .map(|v| AtomicU32::new(v.load(Ordering::Relaxed)))
            .collect();
        Ok(HashTable {
            keys,
            values,
            capacity: self.capacity,
            entries: self.entries,
            load_factor: self.load_factor,
            device: self.device.clone(),
            accounted_bytes: self.accounted_bytes,
        })
    }

    /// The slot count a table sized for `expected_keys` at `load_factor`
    /// would use. The raw ratio is clamped below `2^62` before the
    /// power-of-two round-up so an extreme `expected_keys / load_factor`
    /// ratio saturates into an allocation the memory tracker rejects as
    /// out-of-memory instead of overflowing `next_power_of_two`.
    fn capacity_for(expected_keys: usize, load_factor: f64) -> usize {
        // Low enough that `capacity * 12` bytes cannot overflow `usize`.
        const MAX_SLOTS: f64 = (1u64 << 58) as f64;
        let raw = (expected_keys.max(1) as f64 / load_factor).ceil();
        (raw.min(MAX_SLOTS) as usize).next_power_of_two().max(8)
    }

    /// Number of slots in the table.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of distinct keys inserted (approximate under concurrency; the
    /// exact count is refreshed by [`HashTable::recount_entries`]).
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// The load factor the table was sized for.
    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Bytes charged against the device for this table.
    pub fn accounted_bytes(&self) -> usize {
        self.accounted_bytes
    }

    /// Whether inserting `additional` more distinct keys would push the table
    /// past its configured load factor.
    pub fn needs_rebuild_for(&self, additional: usize) -> bool {
        (self.entries + additional) as f64 > self.capacity as f64 * self.load_factor
    }

    /// Inserts `(key_hash, position)` — claims a slot for the key if absent
    /// and lowers the stored position to the minimum seen (Algorithm 2).
    /// Returns whether a fresh slot was claimed (i.e. the key was new).
    ///
    /// Safe to call concurrently from many device threads.
    pub fn insert(&self, key_hash: u64, position: u32) -> bool {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            match claim_key_slot(&self.keys[slot], key_hash) {
                Ok(claimed_new) => {
                    atomic_min_u32(&self.values[slot], position);
                    return claimed_new;
                }
                Err(_other_key) => {
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Inserts `(key_hash, value)` keeping, per key, the value whose
    /// `pos_of` rank is smallest — the atomic-min insert path of incremental
    /// index maintenance. HISA stores data-array **row ids** here (stable
    /// across merges, which only concatenate the data array) and ranks them
    /// by their *current* sorted-index position, so the comparison is always
    /// against fresh positions even when the stored value predates many
    /// merges. Returns whether a fresh slot was claimed.
    ///
    /// Safe to call concurrently from many device threads, provided `pos_of`
    /// is stable for the duration of the call (it is: the engine never
    /// merges and probes the same HISA concurrently).
    pub fn insert_min_by<P>(&self, key_hash: u64, value: u32, pos_of: &P) -> bool
    where
        P: Fn(u32) -> u32,
    {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            match claim_key_slot(&self.keys[slot], key_hash) {
                Ok(claimed_new) => {
                    let cell = &self.values[slot];
                    let mut current = cell.load(Ordering::Acquire);
                    loop {
                        if current != EMPTY_VALUE && pos_of(current) <= pos_of(value) {
                            break;
                        }
                        match cell.compare_exchange_weak(
                            current,
                            value,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        ) {
                            Ok(_) => break,
                            Err(observed) => current = observed,
                        }
                    }
                    return claimed_new;
                }
                Err(_other_key) => {
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Looks up a key hash, returning the smallest sorted-index position
    /// associated with it.
    pub fn lookup(&self, key_hash: u64) -> Option<u32> {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            let k = self.keys[slot].load(Ordering::Acquire);
            if k == key_hash {
                let v = self.values[slot].load(Ordering::Acquire);
                return if v == EMPTY_VALUE { None } else { Some(v) };
            }
            if k == EMPTY_KEY {
                return None;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Data-parallel bulk construction: for every position `p` in
    /// `0..positions`, inserts `(key_hash_of(p), p)` using one simulated
    /// device thread per position.
    pub fn build_parallel<F>(&mut self, positions: usize, key_hash_of: F)
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let metrics = self.device.metrics();
        metrics.add_atomic_ops(positions as u64 * 2);
        metrics.add_bytes_read(positions as u64 * 16);
        let this = &*self;
        self.device.launch("hash-build", positions, |p| {
            this.insert(key_hash_of(p), p as u32);
        });
        self.recount_entries();
    }

    /// Data-parallel bulk construction with caller-defined values and
    /// ranking: for every `p` in `0..positions`, inserts
    /// `(key_hash_of(p), value_of(p))` keeping per key the value of
    /// smallest `pos_of` rank (see [`HashTable::insert_min_by`]).
    pub fn build_parallel_min_by<H, V, P>(
        &mut self,
        positions: usize,
        key_hash_of: H,
        value_of: V,
        pos_of: P,
    ) where
        H: Fn(usize) -> u64 + Sync,
        V: Fn(usize) -> u32 + Sync,
        P: Fn(u32) -> u32 + Sync,
    {
        let metrics = self.device.metrics();
        metrics.add_atomic_ops(positions as u64 * 2);
        metrics.add_bytes_read(positions as u64 * 16);
        let this = &*self;
        self.device.launch("hash-build", positions, |p| {
            this.insert_min_by(key_hash_of(p), value_of(p), &pos_of);
        });
        self.recount_entries();
    }

    /// Incremental data-parallel insertion of `count` delta entries into an
    /// **existing** table — the merge-phase fast path that replaces a full
    /// rebuild. Unlike the `build_parallel*` constructors it never rescans
    /// the table: newly claimed slots are counted on the fly and folded into
    /// [`HashTable::entries`], so the whole operation is O(count). Returns
    /// the number of freshly claimed keys.
    ///
    /// The caller is responsible for checking
    /// [`HashTable::needs_rebuild_for`] first; inserting past the load
    /// factor still terminates (the table never fills completely) but
    /// degrades probe lengths.
    pub fn insert_batch_min_by<H, V, P>(
        &mut self,
        count: usize,
        key_hash_of: H,
        value_of: V,
        pos_of: P,
    ) -> u64
    where
        H: Fn(usize) -> u64 + Sync,
        V: Fn(usize) -> u32 + Sync,
        P: Fn(u32) -> u32 + Sync,
    {
        if count == 0 {
            return 0;
        }
        let metrics = self.device.metrics();
        metrics.add_hash_inserts(count as u64);
        metrics.add_atomic_ops(count as u64 * 2);
        metrics.add_bytes_read(count as u64 * 16);
        metrics.add_bytes_written(count as u64 * 12);
        let claimed = std::sync::atomic::AtomicU64::new(0);
        {
            let this = &*self;
            let claimed_ref = &claimed;
            self.device.launch("hash-build", count, |p| {
                if this.insert_min_by(key_hash_of(p), value_of(p), &pos_of) {
                    claimed_ref.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let claimed = claimed.into_inner();
        self.entries += claimed as usize;
        claimed
    }

    /// Ensures the table can absorb `expected_keys` distinct keys in total
    /// without exceeding its load factor, growing (power-of-two, so repeated
    /// reservations amortise) and rehashing the existing entries when it
    /// cannot. Values are carried over verbatim — they are opaque to the
    /// table, and rehashing moves slots, not values. Returns whether a
    /// growth rehash happened; the caller decides how to account it.
    ///
    /// # Errors
    ///
    /// Returns [`gpulog_device::DeviceError::OutOfMemory`] if the grown
    /// table does not fit on the device (the table is unchanged then).
    pub fn reserve_for_keys(&mut self, expected_keys: usize) -> DeviceResult<bool> {
        if expected_keys as f64 <= self.capacity as f64 * self.load_factor {
            return Ok(false);
        }
        self.rehash_sized_for(expected_keys)?;
        Ok(true)
    }

    /// Shrinks the table back to the minimal capacity for its current entry
    /// count, releasing reservation slack — the inverse of
    /// [`HashTable::reserve_for_keys`]. Best-effort: the table is left
    /// unchanged when it is already minimal or when the (transiently
    /// coexisting) smaller table cannot be allocated. Returns whether a
    /// shrink rehash happened.
    pub fn shrink_to_entries(&mut self) -> bool {
        if Self::capacity_for(self.entries, self.load_factor) >= self.capacity {
            return false;
        }
        self.rehash_sized_for(self.entries).is_ok()
    }

    /// Replaces the table with one sized for `expected_keys`, moving every
    /// occupied `(key, value)` pair across — the shared body of growth and
    /// shrink rehashes. Values are opaque to the table and carried over
    /// verbatim. On error the table is left unchanged.
    fn rehash_sized_for(&mut self, expected_keys: usize) -> DeviceResult<()> {
        let next = HashTable::with_capacity(&self.device, expected_keys, self.load_factor)?;
        for (key, value) in self.iter_entries() {
            next.rehash_insert(key, value);
        }
        let entries = self.entries;
        *self = next;
        self.entries = entries;
        Ok(())
    }

    /// Moves one `(key, value)` pair into a freshly allocated rehash target.
    /// Keys coming from [`HashTable::iter_entries`] are unique, so the first
    /// claim wins and the value is stored directly.
    fn rehash_insert(&self, key_hash: u64, value: u32) {
        let mask = self.capacity - 1;
        let mut slot = (key_hash as usize) & mask;
        loop {
            match claim_key_slot(&self.keys[slot], key_hash) {
                Ok(_) => {
                    self.values[slot].store(value, Ordering::Release);
                    return;
                }
                Err(_other_key) => {
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    /// Recounts the number of occupied slots (used after bulk insertion).
    pub fn recount_entries(&mut self) {
        self.entries = self
            .keys
            .iter()
            .filter(|k| k.load(Ordering::Relaxed) != EMPTY_KEY)
            .count();
    }

    /// Iterates over the occupied `(key_hash, position)` pairs.
    pub fn iter_entries(&self) -> impl Iterator<Item = (u64, u32)> + '_ {
        self.keys
            .iter()
            .zip(self.values.iter())
            .filter_map(|(k, v)| {
                let key = k.load(Ordering::Relaxed);
                if key == EMPTY_KEY {
                    None
                } else {
                    Some((key, v.load(Ordering::Relaxed)))
                }
            })
    }
}

impl Drop for HashTable {
    fn drop(&mut self) {
        self.device.tracker().free(self.accounted_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn insert_then_lookup_round_trips() {
        let d = device();
        let t = HashTable::with_capacity(&d, 100, 0.8).unwrap();
        t.insert(42, 7);
        t.insert(99, 3);
        assert_eq!(t.lookup(42), Some(7));
        assert_eq!(t.lookup(99), Some(3));
        assert_eq!(t.lookup(1000), None);
    }

    #[test]
    fn insert_keeps_smallest_position() {
        let d = device();
        let t = HashTable::with_capacity(&d, 10, 0.8).unwrap();
        t.insert(5, 20);
        t.insert(5, 7);
        t.insert(5, 30);
        assert_eq!(t.lookup(5), Some(7));
    }

    #[test]
    fn linear_probing_resolves_collisions() {
        let d = device();
        let t = HashTable::with_capacity(&d, 4, 1.0).unwrap();
        let cap = t.capacity() as u64;
        // Keys that collide modulo the capacity.
        t.insert(3, 1);
        t.insert(3 + cap, 2);
        t.insert(3 + 2 * cap, 3);
        assert_eq!(t.lookup(3), Some(1));
        assert_eq!(t.lookup(3 + cap), Some(2));
        assert_eq!(t.lookup(3 + 2 * cap), Some(3));
    }

    #[test]
    fn parallel_build_finds_minimum_position_per_key() {
        let d = device();
        let n = 10_000usize;
        // 100 distinct keys, each appearing 100 times; smallest position for
        // key k is k itself (positions are assigned round-robin).
        let mut t = HashTable::with_capacity(&d, 100, 0.8).unwrap();
        t.build_parallel(n, |p| (p % 100) as u64 + 1);
        for k in 0..100u64 {
            assert_eq!(t.lookup(k + 1), Some(k as u32));
        }
        assert_eq!(t.entries(), 100);
    }

    #[test]
    fn insert_min_by_ranks_with_the_position_closure_not_the_value() {
        let d = device();
        let t = HashTable::with_capacity(&d, 10, 0.8).unwrap();
        // Rank is the *inverse* of the value: larger values win.
        let pos_of = |v: u32| 100 - v;
        assert!(t.insert_min_by(5, 20, &pos_of));
        assert!(!t.insert_min_by(5, 7, &pos_of));
        assert!(!t.insert_min_by(5, 30, &pos_of));
        assert_eq!(t.lookup(5), Some(30));
    }

    #[test]
    fn insert_batch_min_by_counts_fresh_keys_and_updates_entries() {
        let d = device();
        let mut t = HashTable::with_capacity(&d, 100, 0.8).unwrap();
        t.insert(1, 10);
        t.recount_entries();
        let before = d.metrics().snapshot();
        // Keys 1 (already present) and 2..5 (new), identity ranking.
        let claimed = t.insert_batch_min_by(5, |p| (p as u64 % 5) + 1, |p| p as u32, |v| v);
        assert_eq!(claimed, 4);
        assert_eq!(t.entries(), 5);
        assert_eq!(d.metrics().snapshot().since(&before).hash_inserts, 5);
        // Key 1 keeps its smaller original position.
        assert_eq!(t.lookup(1), Some(0));
    }

    #[test]
    fn reserve_for_keys_grows_and_preserves_lookups() {
        let d = device();
        let mut t = HashTable::with_capacity(&d, 8, 0.8).unwrap();
        for k in 0..6u64 {
            t.insert(k + 1, k as u32 * 3);
        }
        t.recount_entries();
        let cap_before = t.capacity();
        assert!(!t.reserve_for_keys(6).unwrap(), "fits: no rehash");
        assert_eq!(t.capacity(), cap_before);
        assert!(t.reserve_for_keys(1000).unwrap(), "must grow");
        assert!(t.capacity() >= 1024);
        assert_eq!(t.entries(), 6);
        for k in 0..6u64 {
            assert_eq!(t.lookup(k + 1), Some(k as u32 * 3));
        }
        assert!(!t.needs_rebuild_for(900));
    }

    #[test]
    fn capacity_respects_load_factor() {
        let d = device();
        let t = HashTable::with_capacity(&d, 80, 0.8).unwrap();
        assert!(t.capacity() >= 100);
        assert!(!t.needs_rebuild_for(0));
    }

    #[test]
    fn drop_releases_device_memory() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 16));
        let before = d.tracker().in_use();
        {
            let _t = HashTable::with_capacity(&d, 1000, 0.8).unwrap();
            assert!(d.tracker().in_use() > before);
        }
        assert_eq!(d.tracker().in_use(), before);
    }

    #[test]
    fn oversized_table_is_oom() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 10));
        assert!(HashTable::with_capacity(&d, 1 << 20, 0.8).is_err());
    }

    #[test]
    fn degenerate_load_factors_are_typed_errors_not_panics() {
        use gpulog_device::DeviceError;
        let d = device();
        // Each degenerate input from the sizing expression
        // `(expected_keys.max(1) / load_factor).ceil()`: zero and negatives
        // flip or zero the table size, NaN poisons it, and anything above
        // 1.0 under-sizes the table below its entry count.
        for bad in [0.0, -0.5, f64::NAN, 1.5, f64::INFINITY, f64::NEG_INFINITY] {
            match HashTable::with_capacity(&d, 100, bad) {
                Err(DeviceError::InvalidLoadFactor { value }) => {
                    assert_eq!(value, format!("{bad}"), "load factor {bad}");
                }
                other => panic!("load factor {bad}: expected InvalidLoadFactor, got {other:?}"),
            }
        }
        // The upper boundary of (0, 1] still constructs.
        assert!(HashTable::with_capacity(&d, 100, 1.0).is_ok());
    }

    #[test]
    fn tiny_positive_load_factor_saturates_to_oom_not_overflow() {
        // A subnormal-but-valid load factor must not overflow the
        // power-of-two round-up; the saturated allocation is rejected by
        // the device's memory tracker instead.
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 16));
        match HashTable::with_capacity(&d, 1000, 1e-300) {
            Err(gpulog_device::DeviceError::OutOfMemory { .. }) => {}
            other => panic!("expected OutOfMemory, got {other:?}"),
        }
    }

    #[test]
    fn try_clone_copies_slots_and_charges_the_device() {
        let d = device();
        let mut t = HashTable::with_capacity(&d, 50, 0.8).unwrap();
        for k in 0..40u64 {
            t.insert(k + 1, k as u32 * 2);
        }
        t.recount_entries();
        let in_use_before = d.tracker().in_use();
        let copy = t.try_clone().unwrap();
        assert_eq!(
            d.tracker().in_use(),
            in_use_before + t.accounted_bytes(),
            "the copy must be charged against the device"
        );
        assert_eq!(copy.capacity(), t.capacity());
        assert_eq!(copy.entries(), t.entries());
        for k in 0..40u64 {
            assert_eq!(copy.lookup(k + 1), Some(k as u32 * 2));
        }
        // Mutating the copy must not leak into the original.
        copy.insert(999, 7);
        assert_eq!(t.lookup(999), None);
        drop(copy);
        assert_eq!(d.tracker().in_use(), in_use_before);
    }

    #[test]
    fn try_clone_of_an_oversized_table_is_oom() {
        let d = Device::new(DeviceProfile::tiny_test_device(40_000));
        let t = HashTable::with_capacity(&d, 1000, 0.8).unwrap();
        assert!(t.try_clone().is_err(), "no room for a second copy");
    }

    #[test]
    fn iter_entries_reports_inserted_pairs() {
        let d = device();
        let t = HashTable::with_capacity(&d, 10, 0.8).unwrap();
        t.insert(11, 1);
        t.insert(22, 2);
        let mut entries: Vec<(u64, u32)> = t.iter_entries().collect();
        entries.sort();
        assert_eq!(entries, vec![(11, 1), (22, 2)]);
    }
}
