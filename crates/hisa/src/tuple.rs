//! Tuple and index-specification types shared across the HISA layers.

use std::num::NonZeroUsize;

/// The column value type.
///
/// GPUlog relations are over dense 32-bit identifiers (node ids, program
/// points, register names interned to integers), matching the paper's
/// datasets and the GPU-friendly fixed-width layout.
pub type Value = u32;

/// Describes how a relation's tuples are indexed by a HISA instance:
/// the tuple arity and which columns form the (join) key.
///
/// HISA reorders columns so the key columns come first (paper Algorithm 1,
/// lines 1–5); [`IndexSpec::reorder`] and [`IndexSpec::restore`] convert
/// between the original column order and the reordered, key-first order.
///
/// # Examples
///
/// ```
/// use gpulog_hisa::IndexSpec;
///
/// // A 3-column relation keyed on its last two columns.
/// let spec = IndexSpec::new(3, vec![1, 2]);
/// assert_eq!(spec.reorder(&[10, 20, 30]), vec![20, 30, 10]);
/// assert_eq!(spec.restore(&[20, 30, 10]), vec![10, 20, 30]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndexSpec {
    arity: usize,
    key_columns: Vec<usize>,
    /// Column permutation: `permutation[i]` is the original column stored at
    /// reordered position `i` (key columns first, then the rest in order).
    permutation: Vec<usize>,
}

impl IndexSpec {
    /// Creates an index specification for an `arity`-column relation keyed
    /// on `key_columns` (in the given significance order).
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero, `key_columns` is empty, contains an
    /// out-of-range column, or contains duplicates.
    pub fn new(arity: usize, key_columns: Vec<usize>) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert!(
            !key_columns.is_empty(),
            "at least one key column is required"
        );
        assert!(
            key_columns.iter().all(|&c| c < arity),
            "key column out of range for arity {arity}"
        );
        let mut seen = vec![false; arity];
        for &c in &key_columns {
            assert!(!seen[c], "duplicate key column {c}");
            seen[c] = true;
        }
        let mut permutation = key_columns.clone();
        permutation.extend((0..arity).filter(|&c| !seen[c]));
        IndexSpec {
            arity,
            key_columns,
            permutation,
        }
    }

    /// Index over all columns in their natural order — the specification
    /// used when a HISA only needs deduplication and iteration.
    pub fn full_key(arity: usize) -> Self {
        Self::new(arity, (0..arity).collect())
    }

    /// Tuple arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of key (join) columns.
    pub fn key_arity(&self) -> usize {
        self.key_columns.len()
    }

    /// The key columns, in significance order, as originally specified.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// The full column permutation (key columns first).
    pub fn permutation(&self) -> &[usize] {
        &self.permutation
    }

    /// Reorders one tuple from original column order to key-first order.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.len() != arity`.
    pub fn reorder(&self, tuple: &[Value]) -> Vec<Value> {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.permutation.iter().map(|&c| tuple[c]).collect()
    }

    /// Restores one tuple from key-first order back to original order.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.len() != arity`.
    pub fn restore(&self, reordered: &[Value]) -> Vec<Value> {
        assert_eq!(reordered.len(), self.arity, "tuple arity mismatch");
        let mut out = vec![0; self.arity];
        for (pos, &orig_col) in self.permutation.iter().enumerate() {
            out[orig_col] = reordered[pos];
        }
        out
    }

    /// Reorders a whole row-major tuple buffer to key-first order.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the arity.
    pub fn reorder_rows(&self, data: &[Value]) -> Vec<Value> {
        assert_eq!(data.len() % self.arity, 0, "ragged tuple buffer");
        let mut out = Vec::with_capacity(data.len());
        for row in data.chunks_exact(self.arity) {
            out.extend(self.permutation.iter().map(|&c| row[c]));
        }
        out
    }
}

/// Hashes the key columns of a reordered (key-first) row.
///
/// The hash is a 64-bit FNV-1a over the key values; it never returns the
/// hash-table's empty sentinel.
pub fn hash_key(key_values: &[Value]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &v in key_values {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    // Reserve u64::MAX as the empty-slot sentinel.
    if h == u64::MAX {
        0
    } else {
        h
    }
}

/// Compares two key-first rows by their first `key_arity` columns.
pub fn key_eq(a: &[Value], b: &[Value], key_arity: usize) -> bool {
    a[..key_arity] == b[..key_arity]
}

/// Maps a join key to its shard: `hash(key) % shards`.
///
/// This is *the* partitioning function of the sharded evaluation path:
/// every component that hash-partitions relations (sharded HISA indices,
/// outer-batch partitioning, per-shard delta population) must route through
/// it so that shard `i` of an outer relation only ever needs to probe shard
/// `i` of an inner relation built over the same key.
///
/// The shard count is a [`NonZeroUsize`], so the zero-shard division that
/// used to abort via `assert!` is unrepresentable: library users convert
/// (and validate) their count exactly once at the boundary — the engine
/// maps zero to `EngineError::InvalidShardCount` there — and every data-
/// layer call below is panic-free by construction.
pub fn shard_of(key_values: &[Value], shards: NonZeroUsize) -> usize {
    (hash_key(key_values) % shards.get() as u64) as usize
}

/// Hash-partitions a dense row-major buffer into `shards` buckets by the
/// [`shard_of`] hash of each row's `key_cols` values, preserving relative
/// row order within each bucket. This is the one partition loop behind
/// both [`crate::TupleBatch::partition_by_key_hash`] and the relation
/// layer's shard maps, so the shard-alignment invariant (shard `i` of an
/// outer only probes shard `i` of an inner) cannot drift between them.
///
/// # Panics
///
/// Panics if `data` is ragged or a key column is out of range (programmer
/// errors on internal buffers); a zero shard count is unrepresentable.
pub fn partition_flat_by_key_hash(
    data: &[Value],
    arity: usize,
    key_cols: &[usize],
    shards: NonZeroUsize,
) -> Vec<Vec<Value>> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "ragged row buffer");
    assert!(
        key_cols.iter().all(|&c| c < arity),
        "key column out of range"
    );
    let mut parts: Vec<Vec<Value>> = vec![Vec::new(); shards.get()];
    let mut key = Vec::with_capacity(key_cols.len());
    for row in data.chunks_exact(arity) {
        key.clear();
        key.extend(key_cols.iter().map(|&c| row[c]));
        parts[shard_of(&key, shards)].extend_from_slice(row);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_and_restore_are_inverses() {
        let spec = IndexSpec::new(4, vec![2, 0]);
        let tuple = vec![7, 8, 9, 10];
        let reordered = spec.reorder(&tuple);
        assert_eq!(reordered, vec![9, 7, 8, 10]);
        assert_eq!(spec.restore(&reordered), tuple);
    }

    #[test]
    fn full_key_spec_is_identity_permutation() {
        let spec = IndexSpec::full_key(3);
        assert_eq!(spec.permutation(), &[0, 1, 2]);
        assert_eq!(spec.reorder(&[1, 2, 3]), vec![1, 2, 3]);
        assert_eq!(spec.key_arity(), 3);
    }

    #[test]
    fn reorder_rows_handles_multiple_tuples() {
        let spec = IndexSpec::new(2, vec![1]);
        let data = vec![1, 2, 3, 4];
        assert_eq!(spec.reorder_rows(&data), vec![2, 1, 4, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate key column")]
    fn duplicate_key_columns_are_rejected() {
        IndexSpec::new(3, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "key column out of range")]
    fn out_of_range_key_column_is_rejected() {
        IndexSpec::new(2, vec![5]);
    }

    #[test]
    fn hash_key_distinguishes_keys_and_avoids_sentinel() {
        assert_ne!(hash_key(&[1, 2]), hash_key(&[2, 1]));
        assert_ne!(hash_key(&[0]), u64::MAX);
        assert_eq!(hash_key(&[42, 7]), hash_key(&[42, 7]));
    }

    #[test]
    fn key_eq_compares_prefix_only() {
        assert!(key_eq(&[1, 2, 99], &[1, 2, 3], 2));
        assert!(!key_eq(&[1, 2, 3], &[1, 3, 3], 2));
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for shards in [1usize, 2, 7, 64] {
            let shards = NonZeroUsize::new(shards).unwrap();
            for key in 0..100u32 {
                let s = shard_of(&[key, key * 3], shards);
                assert!(s < shards.get());
                assert_eq!(s, shard_of(&[key, key * 3], shards));
            }
        }
        // One shard maps everything to shard zero.
        let one = NonZeroUsize::new(1).unwrap();
        assert_eq!(shard_of(&[123, 456], one), 0);
    }
}
