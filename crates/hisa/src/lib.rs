//! # `gpulog-hisa`: the Hash-Indexed Sorted Array
//!
//! The relation-backing data structure at the heart of GPUlog ("Optimizing
//! Datalog for the GPU", ASPLOS 2025, Section 4). A [`Hisa`] layers an
//! open-addressing hash table over a lexicographically sorted index array
//! over a dense row-major data array, satisfying the paper's four
//! requirements for a GPU relation representation:
//!
//! * **R1 — efficient range queries**: the hash table maps a join key to the
//!   first sorted position holding it; matching tuples are then a linear
//!   scan.
//! * **R2 — parallel iteration**: the data array is dense, so outer-relation
//!   scans are coalesced strided reads.
//! * **R3 — multi-column join keys**: keys are hashed to 64 bits regardless
//!   of width.
//! * **R4 — deduplication**: sorting makes duplicates adjacent; a parallel
//!   adjacent-comparison pass removes them.
//!
//! ```
//! use gpulog_device::{Device, profile::DeviceProfile};
//! use gpulog_hisa::{Hisa, IndexSpec};
//!
//! # fn main() -> Result<(), gpulog_device::DeviceError> {
//! let device = Device::new(DeviceProfile::default());
//! let edges = [0u32, 1, 1, 2, 1, 3];
//! let hisa = Hisa::build(&device, IndexSpec::new(2, vec![0]), &edges)?;
//! assert_eq!(hisa.range_query(&[1]).count(), 2);
//! # Ok(())
//! # }
//! ```

pub mod batch;
pub mod dedup;
pub mod hash_table;
#[allow(clippy::module_inception)]
mod hisa;
pub mod tuple;

pub use batch::{rows_are_sorted_unique, TupleBatch};
pub use hash_table::{HashTable, DEFAULT_LOAD_FACTOR};
pub use hisa::{Hisa, RangeQuery};
pub use tuple::{hash_key, key_eq, partition_flat_by_key_hash, shard_of, IndexSpec, Value};

#[cfg(test)]
mod tests {
    use super::*;
    use gpulog_device::{profile::DeviceProfile, Device};

    #[test]
    fn crate_level_example_compiles_and_runs() {
        let device = Device::new(DeviceProfile::default());
        let edges = [0u32, 1, 1, 2, 1, 3];
        let hisa = Hisa::build(&device, IndexSpec::new(2, vec![0]), &edges).unwrap();
        assert_eq!(hisa.range_query(&[1]).count(), 2);
    }

    #[test]
    fn hisa_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Hisa>();
        assert_send_sync::<IndexSpec>();
    }
}
