//! # `gpulog-device`: the simulated GPU substrate
//!
//! The GPUlog paper ("Optimizing Datalog for the GPU", ASPLOS 2025) targets
//! CUDA/HIP data-center GPUs. This crate is the reproduction's stand-in for
//! that hardware layer: it provides the same *programming model* — dense
//! device buffers, pooled allocation, kernel launches over an index space,
//! atomics, and the Thrust primitive vocabulary (stable sort, merge path,
//! scan, gather, compaction) — with every operation's memory traffic and
//! work recorded so an analytic cost model can translate it into modeled
//! device time for any [`profile::DeviceProfile`].
//!
//! ## Execution substrate
//!
//! Kernels execute on a **persistent worker pool**
//! ([`worker_pool::WorkerPool`]): the pool's threads are spawned once when
//! a [`Device`] (or standalone [`Executor`]) is created, park on a condvar
//! between launches, and are handed each launch as an epoch of dynamically
//! claimed task indices. No OS thread is ever created per kernel launch —
//! the CUDA cost shape — and the `threads_spawned`, `pool_dispatches`,
//! and `dispatch_nanos` counters in [`Metrics`] prove it at run time.
//! Sorting ([`thrust::sort`]) is likewise comparison-free on the hot path:
//! the sorted index arrays HISA needs are built with a stable column-wise
//! LSD radix sort (per-worker histograms, exclusive scan, stable scatter).
//!
//! Everything above this crate (the HISA data structure, the relational
//! algebra kernels, the Datalog engine) is written against this API exactly
//! as the paper's artifact is written against CUDA + Thrust, which is what
//! makes the algorithmic reproduction faithful even without the silicon.
//!
//! ## Quick example
//!
//! ```
//! use gpulog_device::{Device, profile::DeviceProfile};
//! use gpulog_device::thrust::sort::lexicographic_sort_indices;
//!
//! # fn main() -> Result<(), gpulog_device::DeviceError> {
//! let device = Device::new(DeviceProfile::nvidia_h100());
//! // Three 2-column tuples stored row-major: (3,1) (1,2) (3,0)
//! let data = [3u32, 1, 1, 2, 3, 0];
//! let order = lexicographic_sort_indices(&device, &data, 2, &[0, 1]);
//! assert_eq!(order, vec![1, 2, 0]);
//! println!("modeled device time: {:.3e} s", device.modeled_time().total_sec());
//! # Ok(())
//! # }
//! ```

pub mod atomic;
pub mod buffer;
pub mod cost;
mod device;
pub mod error;
pub mod executor;
pub mod lane;
pub mod metrics;
pub mod pool;
pub mod profile;
pub mod thrust;
pub mod topology;
pub mod worker_pool;

pub use buffer::{DeviceBuffer, DeviceValue};
pub use cost::{CostEstimate, CostModel};
pub use device::Device;
pub use error::{DeviceError, DeviceResult};
pub use executor::{Executor, LaunchConfig};
pub use lane::{BackgroundLane, JobHandle};
pub use metrics::{CounterSnapshot, Metrics, PhaseTimer};
pub use profile::{DeviceKind, DeviceProfile};
pub use topology::{DeviceLaneReport, DeviceTopology, LinkProfile, TopologyReport};
pub use worker_pool::WorkerPool;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Device>();
        assert_send_sync::<DeviceProfile>();
        assert_send_sync::<Metrics>();
        assert_send_sync::<CostModel>();
        assert_send_sync::<DeviceBuffer<u32>>();
    }

    #[test]
    fn doc_example_pipeline_works_end_to_end() {
        let device = Device::new(DeviceProfile::nvidia_h100());
        let data = [3u32, 1, 1, 2, 3, 0];
        let order = thrust::sort::lexicographic_sort_indices(&device, &data, 2, &[0, 1]);
        assert_eq!(order, vec![1, 2, 0]);
        assert!(device.modeled_time().total_sec() > 0.0);
    }
}
