//! Analytic cost model translating device counters into modeled device time.
//!
//! The paper (Section 6.6) argues that GPUlog's workloads are dominated by
//! memory traffic: "the performance increases mirror the memory bandwidth
//! differences between the CPU and GPU". The cost model follows that
//! observation with a roofline-style estimate:
//!
//! ```text
//! time = launches * launch_overhead
//!      + bytes_moved / effective_bandwidth
//!      + ops / compute_throughput
//!      + atomic_ops * atomic_cost
//! ```
//!
//! The model is used to regenerate the cross-hardware tables (Table 5,
//! Table 6) on machines that do not have the paper's GPUs, and to report a
//! "modeled device time" next to the measured wall-clock time everywhere
//! else.

use crate::metrics::CounterSnapshot;
use crate::profile::{DeviceKind, DeviceProfile};
use serde::{Deserialize, Serialize};

/// Modeled execution-time estimate broken into its roofline components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Seconds attributable to kernel-launch overhead.
    pub launch_sec: f64,
    /// Seconds attributable to memory traffic.
    pub memory_sec: f64,
    /// Seconds attributable to arithmetic work.
    pub compute_sec: f64,
    /// Seconds attributable to atomic contention.
    pub atomic_sec: f64,
    /// Seconds attributable to non-pooled device allocations.
    pub alloc_sec: f64,
}

impl CostEstimate {
    /// Total modeled seconds.
    pub fn total_sec(&self) -> f64 {
        self.launch_sec + self.memory_sec + self.compute_sec + self.atomic_sec + self.alloc_sec
    }
}

/// Cost model for one device profile.
#[derive(Debug, Clone)]
pub struct CostModel {
    profile: DeviceProfile,
    /// Cost of one atomic read-modify-write, in seconds.
    atomic_op_sec: f64,
}

impl CostModel {
    /// Builds a cost model for the given device profile.
    pub fn new(profile: DeviceProfile) -> Self {
        // GPUs resolve atomics in L2 at a few nanoseconds amortized across
        // thousands of in-flight lanes; CPUs pay a cache-line ping-pong.
        let atomic_op_sec = match profile.kind {
            DeviceKind::Gpu => 2.0e-9 / profile.sm_count as f64,
            DeviceKind::Cpu => 2.0e-8 / profile.sm_count as f64,
        };
        CostModel {
            profile,
            atomic_op_sec,
        }
    }

    /// The profile this model was built from.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Estimates the modeled time for the work described by `counters`.
    pub fn estimate(&self, counters: &CounterSnapshot) -> CostEstimate {
        let launch_sec = counters.kernel_launches as f64 * self.profile.kernel_launch_overhead_sec;
        let memory_sec = counters.bytes_moved() as f64 / self.profile.effective_bandwidth();
        let compute_sec = counters.ops as f64 / self.profile.compute_throughput_ops_per_sec();
        let atomic_sec = counters.atomic_ops as f64 * self.atomic_op_sec;
        let unpooled = counters.allocations.saturating_sub(counters.pool_reuses);
        let alloc_sec = unpooled as f64 * self.profile.allocation_overhead_sec
            + counters.bytes_allocated as f64 / self.profile.allocation_bandwidth_bytes_per_sec;
        CostEstimate {
            launch_sec,
            memory_sec,
            compute_sec,
            atomic_sec,
            alloc_sec,
        }
    }

    /// Estimates modeled time for the work performed between two snapshots.
    pub fn estimate_between(
        &self,
        before: &CounterSnapshot,
        after: &CounterSnapshot,
    ) -> CostEstimate {
        self.estimate(&after.since(before))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traffic(bytes: u64) -> CounterSnapshot {
        CounterSnapshot {
            bytes_read: bytes / 2,
            bytes_written: bytes / 2,
            ops: bytes / 8,
            atomic_ops: 0,
            kernel_launches: 10,
            ..Default::default()
        }
    }

    #[test]
    fn more_bandwidth_means_less_modeled_time() {
        let work = traffic(1 << 32);
        let h100 = CostModel::new(DeviceProfile::nvidia_h100()).estimate(&work);
        let mi50 = CostModel::new(DeviceProfile::amd_mi50()).estimate(&work);
        assert!(h100.total_sec() < mi50.total_sec());
    }

    #[test]
    fn gpu_vs_cpu_ratio_is_order_of_magnitude_on_memory_bound_work() {
        let work = traffic(1 << 34);
        let gpu = CostModel::new(DeviceProfile::nvidia_a100()).estimate(&work);
        let cpu = CostModel::new(DeviceProfile::amd_epyc_7543p()).estimate(&work);
        let ratio = cpu.total_sec() / gpu.total_sec();
        // The paper's Table 6 reports roughly 10x-20x for sort/merge.
        assert!(ratio > 5.0 && ratio < 40.0, "ratio was {ratio}");
    }

    #[test]
    fn estimate_components_sum_to_total() {
        let work = CounterSnapshot {
            bytes_read: 1000,
            bytes_written: 500,
            ops: 200,
            atomic_ops: 50,
            kernel_launches: 3,
            ..Default::default()
        };
        let est = CostModel::new(DeviceProfile::nvidia_h100()).estimate(&work);
        let total =
            est.launch_sec + est.memory_sec + est.compute_sec + est.atomic_sec + est.alloc_sec;
        assert!((est.total_sec() - total).abs() < 1e-18);
        assert!(est.total_sec() > 0.0);
    }

    #[test]
    fn estimate_between_uses_only_the_delta() {
        let model = CostModel::new(DeviceProfile::nvidia_h100());
        let before = traffic(1 << 20);
        let mut after = before;
        after.bytes_read += 1 << 20;
        let delta = model.estimate_between(&before, &after);
        let absolute = model.estimate(&after);
        assert!(delta.total_sec() < absolute.total_sec());
    }

    #[test]
    fn zero_work_costs_zero() {
        let est =
            CostModel::new(DeviceProfile::nvidia_h100()).estimate(&CounterSnapshot::default());
        assert_eq!(est.total_sec(), 0.0);
    }
}
