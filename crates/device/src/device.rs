//! The device handle tying together profile, memory, executor, and metrics.

use crate::buffer::{DeviceBuffer, DeviceValue};
use crate::cost::{CostEstimate, CostModel};
use crate::error::DeviceResult;
use crate::executor::Executor;
use crate::lane::{BackgroundLane, JobHandle};
use crate::metrics::Metrics;
use crate::pool::{MemoryTracker, RecycleBin};
use crate::profile::DeviceProfile;
use std::sync::Arc;
use std::time::Instant;

struct DeviceInner {
    profile: DeviceProfile,
    metrics: Arc<Metrics>,
    tracker: MemoryTracker,
    recycle_bin: RecycleBin,
    executor: Executor,
    lane: BackgroundLane,
}

/// A handle to one simulated GPU (or CPU treated as a device).
///
/// The handle is cheaply cloneable; clones share the same memory tracker,
/// metrics, pooled allocator, and worker pool, exactly as CUDA streams share
/// one physical device.
///
/// # Examples
///
/// ```
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog_device::DeviceError> {
/// let device = Device::new(DeviceProfile::nvidia_h100());
/// let buf = device.buffer_from_slice(&[3u32, 1, 2])?;
/// let doubled = device.launch("double", buf.len(), |i| {
///     // kernels read captured buffers; outputs use dedicated primitives
///     let _ = buf.as_slice()[i] * 2;
/// });
/// # let _ = doubled;
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("profile", &self.inner.profile.name)
            .field("workers", &self.inner.executor.workers())
            .field("bytes_in_use", &self.inner.tracker.in_use())
            .finish()
    }
}

impl Device {
    /// Creates a device with the given profile and the host's full worker
    /// parallelism.
    pub fn new(profile: DeviceProfile) -> Self {
        Self::with_workers(profile, Executor::default_worker_count())
    }

    /// Creates a device with an explicit worker count (useful for tests and
    /// for modelling smaller devices).
    pub fn with_workers(profile: DeviceProfile, workers: usize) -> Self {
        let metrics = Arc::new(Metrics::new());
        let tracker = MemoryTracker::new(profile.memory_capacity_bytes, Arc::clone(&metrics));
        let executor = Executor::with_metrics(workers, Arc::clone(&metrics));
        // The background lane spawns eagerly, with the pool threads, so a
        // fixpoint run still spawns zero threads after device creation.
        let lane = BackgroundLane::new(&metrics);
        Device {
            inner: Arc::new(DeviceInner {
                profile,
                metrics,
                tracker,
                recycle_bin: RecycleBin::new(16),
                executor,
                lane,
            }),
        }
    }

    /// The architectural profile of this device.
    pub fn profile(&self) -> &DeviceProfile {
        &self.inner.profile
    }

    /// The shared metric counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The memory tracker enforcing device capacity.
    pub fn tracker(&self) -> &MemoryTracker {
        &self.inner.tracker
    }

    /// The pooled recycle bin for tuple buffers.
    pub fn recycle_bin(&self) -> &RecycleBin {
        &self.inner.recycle_bin
    }

    /// The data-parallel executor.
    pub fn executor(&self) -> &Executor {
        &self.inner.executor
    }

    /// Hands `job` to the device's background lane — the simulated analog
    /// of enqueueing work on a second CUDA stream. Jobs run one at a time
    /// in submission order; the returned [`JobHandle`] joins the result and
    /// remembers the submission instant so the caller can attribute the
    /// outstanding window to the `overlap_nanos` counter. Submission also
    /// raises the `epochs_in_flight` gauge until the job completes.
    pub fn submit_background<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.inner.lane.submit(&self.inner.metrics, job)
    }

    /// Builds the analytic cost model for this device's profile.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.inner.profile.clone())
    }

    /// Modeled device time for all work recorded so far.
    pub fn modeled_time(&self) -> CostEstimate {
        self.cost_model().estimate(&self.inner.metrics.snapshot())
    }

    /// Allocates a buffer holding a copy of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if the buffer does not fit.
    pub fn buffer_from_slice<T: DeviceValue>(&self, data: &[T]) -> DeviceResult<DeviceBuffer<T>> {
        self.metrics()
            .add_bytes_written(std::mem::size_of_val(data) as u64);
        DeviceBuffer::from_vec(self.clone(), data.to_vec())
    }

    /// Allocates a buffer of `len` copies of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if the buffer does not fit.
    pub fn buffer_filled<T: DeviceValue>(
        &self,
        len: usize,
        value: T,
    ) -> DeviceResult<DeviceBuffer<T>> {
        self.metrics()
            .add_bytes_written((len * std::mem::size_of::<T>()) as u64);
        DeviceBuffer::from_vec(self.clone(), vec![value; len])
    }

    /// Wraps an existing host vector as a device buffer (the simulated analog
    /// of a host-to-device transfer that reuses a staging allocation).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if the buffer does not fit.
    pub fn buffer_from_vec<T: DeviceValue>(&self, data: Vec<T>) -> DeviceResult<DeviceBuffer<T>> {
        DeviceBuffer::from_vec(self.clone(), data)
    }

    /// Allocates a `u32` buffer of length `len`, preferring a pooled buffer
    /// from the recycle bin (the RMM-style fast path).
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if the buffer does not fit.
    pub fn pooled_u32_buffer(&self, len: usize) -> DeviceResult<DeviceBuffer<u32>> {
        if let Some(mut recycled) = self.inner.recycle_bin.take(len) {
            recycled.resize(len, 0);
            return DeviceBuffer::from_recycled_vec(self.clone(), recycled);
        }
        self.buffer_filled(len, 0u32)
    }

    /// Returns a `u32` buffer's storage to the recycle bin for later reuse.
    pub fn recycle_u32_buffer(&self, buffer: DeviceBuffer<u32>) {
        let vec = buffer.into_vec();
        self.inner.recycle_bin.put(vec);
    }

    /// Launches a simulated kernel: runs `body(i)` for every `i in 0..n` on
    /// the worker pool, records the launch, and attributes the elapsed wall
    /// time to the `name` phase bucket.
    pub fn launch<F>(&self, name: &str, n: usize, body: F)
    where
        F: Fn(usize) + Sync,
    {
        let start = Instant::now();
        self.metrics().add_kernel_launch();
        self.executor().for_each_index(n, body);
        self.metrics().add_phase_time(name, start.elapsed());
    }

    /// Runs `body` (an arbitrary device-side operation), records a kernel
    /// launch, and attributes the elapsed time to the `name` phase bucket.
    pub fn timed_phase<R>(&self, name: &str, body: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = body();
        self.metrics().add_phase_time(name, start.elapsed());
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn clones_share_memory_accounting() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 20));
        let d2 = d.clone();
        let _buf = d.buffer_filled(1024usize, 0u32).unwrap();
        assert!(d2.tracker().in_use() >= 4096);
    }

    #[test]
    fn launch_runs_every_index_and_records_metrics() {
        let d = Device::with_workers(DeviceProfile::tiny_test_device(1 << 20), 4);
        let hits = AtomicUsize::new(0);
        d.launch("test_kernel", 1000, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
        assert_eq!(d.metrics().snapshot().kernel_launches, 1);
        assert!(d.metrics().phase_times().contains_key("test_kernel"));
    }

    #[test]
    fn pooled_buffer_reuses_recycled_storage() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 20));
        let buf = d.pooled_u32_buffer(256).unwrap();
        d.recycle_u32_buffer(buf);
        assert_eq!(d.recycle_bin().retained(), 1);
        let again = d.pooled_u32_buffer(128).unwrap();
        assert_eq!(again.len(), 128);
        let snap = d.metrics().snapshot();
        assert_eq!(snap.pool_reuses, 1);
    }

    #[test]
    fn modeled_time_grows_with_recorded_work() {
        let d = Device::new(DeviceProfile::nvidia_h100());
        let before = d.modeled_time().total_sec();
        d.metrics().add_bytes_read(1 << 30);
        d.metrics().add_kernel_launch();
        assert!(d.modeled_time().total_sec() > before);
    }

    #[test]
    fn timed_phase_returns_body_result() {
        let d = Device::new(DeviceProfile::tiny_test_device(1 << 20));
        let v = d.timed_phase("compute", || 41 + 1);
        assert_eq!(v, 42);
        assert!(d.metrics().phase_times().contains_key("compute"));
    }

    #[test]
    fn background_jobs_can_launch_kernels_and_join() {
        let d = Device::with_workers(DeviceProfile::tiny_test_device(1 << 20), 4);
        let spawned = d.metrics().threads_spawned();
        let worker = d.clone();
        let handle = d.submit_background(move || {
            let hits = AtomicUsize::new(0);
            worker.launch("bg_kernel", 100, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            hits.load(Ordering::Relaxed)
        });
        assert_eq!(handle.wait(), 100);
        // The lane exists from construction: background work spawns nothing.
        assert_eq!(d.metrics().threads_spawned(), spawned);
        assert_eq!(d.metrics().snapshot().epochs_in_flight, 0);
    }

    #[test]
    fn debug_format_mentions_profile_name() {
        let d = Device::new(DeviceProfile::nvidia_a100());
        assert!(format!("{d:?}").contains("NVIDIA A100"));
    }
}
