//! The device's background merge lane.
//!
//! CUDA overlaps work by putting it on a second stream; this simulated
//! device gets the same capability from one long-lived **lane thread** per
//! device, spawned eagerly at device construction (so fixpoint runs still
//! spawn zero threads after warmup) and handed closures through a channel.
//! The pipelined backend uses it to push delta merges off the foreground
//! iteration path: a [`JobHandle`] remembers when the job was submitted, so
//! draining it later can attribute the elapsed window to the
//! `overlap_nanos` counter and any blocking wait to `pipeline_stall_nanos`.
//!
//! The lane thread marks itself as inside the worker-pool context, so any
//! kernel the job launches runs inline on the lane instead of contending
//! with foreground epochs for the pool's dispatch lock.

use crate::metrics::Metrics;
use crate::worker_pool::enter_pool_context_forever;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A closure shipped to the lane thread.
type LaneJob = Box<dyn FnOnce() + Send + 'static>;

/// One background-execution lane: a single thread draining a job queue in
/// submission order. Dropping the lane closes the queue and joins the
/// thread, so every submitted job completes before the device is gone.
pub struct BackgroundLane {
    sender: Option<Sender<LaneJob>>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for BackgroundLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundLane").finish()
    }
}

impl BackgroundLane {
    /// Spawns the lane thread, recording the spawn in `metrics`.
    pub fn new(metrics: &Arc<Metrics>) -> Self {
        let (sender, receiver) = channel::<LaneJob>();
        let thread = std::thread::Builder::new()
            .name("gpulog-device-lane".to_string())
            .spawn(move || {
                enter_pool_context_forever();
                while let Ok(job) = receiver.recv() {
                    job();
                }
            })
            .expect("failed to spawn device lane thread");
        metrics.add_threads_spawned(1);
        BackgroundLane {
            sender: Some(sender),
            thread: Some(thread),
        }
    }

    /// Submits `job` for background execution and returns a handle to its
    /// result. The job runs on the lane thread in submission order; a panic
    /// inside it is contained there (the lane survives) and re-raised on
    /// the thread that eventually [`JobHandle::wait`]s. Dropping the handle
    /// without waiting is allowed — the job still runs to completion before
    /// the lane shuts down.
    ///
    /// `metrics` tracks the epoch gauge: submission raises
    /// `epochs_in_flight` (and its peak); the gauge drops when the job
    /// finishes executing, whether or not anyone waits for it.
    pub fn submit<T, F>(&self, metrics: &Arc<Metrics>, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let slot: Arc<JobSlot<T>> = Arc::new(JobSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        });
        metrics.epoch_submitted();
        let lane_slot = Arc::clone(&slot);
        let lane_metrics = Arc::clone(metrics);
        let boxed: LaneJob = Box::new(move || {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            lane_metrics.epoch_retired();
            let mut result = lane_slot
                .result
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *result = Some(outcome);
            lane_slot.done.notify_all();
        });
        self.sender
            .as_ref()
            .expect("lane sender lives until drop")
            .send(boxed)
            .expect("lane thread lives until drop");
        JobHandle {
            slot,
            submitted_at: Instant::now(),
        }
    }
}

impl Drop for BackgroundLane {
    fn drop(&mut self) {
        // Closing the channel ends the receive loop after the queue drains.
        drop(self.sender.take());
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Where a lane job parks its result for the waiting thread.
struct JobSlot<T> {
    result: Mutex<Option<std::thread::Result<T>>>,
    done: Condvar,
}

/// A handle to one in-flight background job (see [`BackgroundLane::submit`]).
pub struct JobHandle<T> {
    slot: Arc<JobSlot<T>>,
    submitted_at: Instant,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("submitted_at", &self.submitted_at)
            .finish()
    }
}

impl<T> JobHandle<T> {
    /// When the job was handed to the lane — the start of the window
    /// `overlap_nanos` measures.
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }

    /// Whether the job has finished executing (a non-blocking probe).
    pub fn is_done(&self) -> bool {
        self.slot
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Panics
    ///
    /// Re-raises the job's panic, if it panicked.
    pub fn wait(self) -> T {
        let mut result = self
            .slot
            .result
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while result.is_none() {
            result = self
                .slot
                .done
                .wait(result)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        match result.take().expect("checked above") {
            Ok(value) => value,
            Err(panic) => resume_unwind(panic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    fn metrics() -> Arc<Metrics> {
        Arc::new(Metrics::new())
    }

    #[test]
    fn jobs_run_in_submission_order_and_return_results() {
        let m = metrics();
        let lane = BackgroundLane::new(&m);
        let log = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<JobHandle<usize>> = (0..5)
            .map(|i| {
                let log = Arc::clone(&log);
                lane.submit(&m, move || {
                    log.lock().unwrap().push(i);
                    i * 10
                })
            })
            .collect();
        let results: Vec<usize> = handles.into_iter().map(JobHandle::wait).collect();
        assert_eq!(results, vec![0, 10, 20, 30, 40]);
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn epoch_gauge_rises_on_submit_and_falls_on_completion() {
        let m = metrics();
        let lane = BackgroundLane::new(&m);
        let handle = lane.submit(&m, || std::thread::sleep(Duration::from_millis(5)));
        assert!(m.snapshot().peak_epochs_in_flight >= 1);
        handle.wait();
        assert_eq!(m.snapshot().epochs_in_flight, 0);
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_lane() {
        let m = metrics();
        let lane = BackgroundLane::new(&m);
        let bad = lane.submit(&m, || panic!("boom"));
        let good = lane.submit(&m, || 7usize);
        let caught = catch_unwind(AssertUnwindSafe(|| bad.wait()));
        assert!(caught.is_err());
        assert_eq!(good.wait(), 7);
        assert_eq!(m.snapshot().epochs_in_flight, 0);
    }

    #[test]
    fn dropping_a_handle_still_runs_the_job_before_shutdown() {
        let m = metrics();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let lane = BackgroundLane::new(&m);
            let ran = Arc::clone(&ran);
            drop(lane.submit(&m, move || {
                ran.fetch_add(1, Ordering::Relaxed);
            }));
            // Dropping the lane joins the thread, draining the queue.
        }
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        assert_eq!(m.snapshot().epochs_in_flight, 0);
    }

    #[test]
    fn spawning_the_lane_is_counted_once() {
        let m = metrics();
        let _lane = BackgroundLane::new(&m);
        assert_eq!(m.threads_spawned(), 1);
    }
}
