//! Dense device buffers with tracked allocation.
//!
//! A [`DeviceBuffer`] is the simulated analog of a `cudaMalloc`'d region:
//! a densely packed, contiguously stored array whose allocation and release
//! are charged against the device's memory capacity. The engine's relation
//! data arrays, sorted index arrays, and join outputs all live in these
//! buffers, so the peak-usage numbers the harness reports (Table 1, OOM
//! behaviour of Tables 2-3) follow directly from buffer lifetimes.

use crate::device::Device;
use crate::error::DeviceResult;

/// Marker trait for element types that may live in device buffers.
///
/// Every `Copy + Send + Sync + 'static` type qualifies; the alias exists so
/// signatures read in device vocabulary.
pub trait DeviceValue: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> DeviceValue for T {}

/// A dense, allocation-tracked array on the simulated device.
///
/// # Examples
///
/// ```
/// use gpulog_device::{Device, profile::DeviceProfile};
///
/// # fn main() -> Result<(), gpulog_device::DeviceError> {
/// let device = Device::new(DeviceProfile::default());
/// let buf = device.buffer_from_slice(&[1u32, 2, 3])?;
/// assert_eq!(buf.as_slice(), &[1, 2, 3]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DeviceBuffer<T: DeviceValue> {
    data: Vec<T>,
    device: Device,
    accounted_bytes: usize,
}

impl<T: DeviceValue> DeviceBuffer<T> {
    pub(crate) fn from_vec(device: Device, data: Vec<T>) -> DeviceResult<Self> {
        let bytes = data.capacity() * std::mem::size_of::<T>();
        device.tracker().allocate(bytes, false)?;
        Ok(DeviceBuffer {
            data,
            device,
            accounted_bytes: bytes,
        })
    }

    pub(crate) fn from_recycled_vec(device: Device, data: Vec<T>) -> DeviceResult<Self> {
        let bytes = data.capacity() * std::mem::size_of::<T>();
        device.tracker().allocate(bytes, true)?;
        Ok(DeviceBuffer {
            data,
            device,
            accounted_bytes: bytes,
        })
    }

    /// Number of elements stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of elements the buffer can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Bytes charged against the device for this buffer.
    pub fn accounted_bytes(&self) -> usize {
        self.accounted_bytes
    }

    /// Read-only view of the contents.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the contents.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Copies the contents back to the host.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.clone()
    }

    /// The device this buffer lives on.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Grows the buffer's reserved capacity to at least `capacity` elements,
    /// charging the increase against the device.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if the extra capacity does
    /// not fit on the device; the buffer is left unchanged in that case.
    pub fn reserve_total(&mut self, capacity: usize) -> DeviceResult<()> {
        if capacity <= self.data.capacity() {
            return Ok(());
        }
        let new_bytes = capacity * std::mem::size_of::<T>();
        let extra = new_bytes - self.accounted_bytes;
        self.device.tracker().allocate(extra, false)?;
        self.data.reserve_exact(capacity - self.data.len());
        // `reserve_exact` may round up; account what was actually obtained.
        let actual_bytes = self.data.capacity() * std::mem::size_of::<T>();
        if actual_bytes > new_bytes {
            if self
                .device
                .tracker()
                .allocate(actual_bytes - new_bytes, false)
                .is_err()
            {
                // Rounding pushed us over capacity; treat the rounded-up
                // remainder as unaccounted slack rather than failing the
                // whole reservation.
                self.accounted_bytes = new_bytes;
                return Ok(());
            }
            self.accounted_bytes = actual_bytes;
        } else {
            self.accounted_bytes = new_bytes;
        }
        Ok(())
    }

    /// Appends `items`, growing (and accounting) capacity as needed.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if growth exceeds device
    /// capacity.
    pub fn extend_from_slice(&mut self, items: &[T]) -> DeviceResult<()> {
        let needed = self.data.len() + items.len();
        if needed > self.data.capacity() {
            // Grow geometrically like the real allocator would, so repeated
            // appends stay amortized.
            let target = needed.max(self.data.capacity() * 2);
            self.reserve_total(target)?;
        }
        self.data.extend_from_slice(items);
        self.device
            .metrics()
            .add_bytes_written(std::mem::size_of_val(items) as u64);
        Ok(())
    }

    /// Shortens the buffer to `len` elements (capacity is retained).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Resizes to `len` elements, filling any new slots with `value`.
    /// Reserves exactly `len` when growth is needed (no geometric slack):
    /// amortisation is the caller's policy — eager buffer management
    /// over-reserves explicitly via `reserve_total`, and the exact-size
    /// (EBM-off) discipline must not double allocations behind its back.
    ///
    /// # Errors
    ///
    /// Returns [`crate::DeviceError::OutOfMemory`] if growth exceeds device
    /// capacity.
    pub fn resize(&mut self, len: usize, value: T) -> DeviceResult<()> {
        self.reserve_total(len)?;
        if len > self.data.len() {
            self.device
                .metrics()
                .add_bytes_written(((len - self.data.len()) * std::mem::size_of::<T>()) as u64);
        }
        self.data.resize(len, value);
        Ok(())
    }

    /// Removes all elements (capacity is retained).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Releases unused capacity back to the device (the behaviour of a
    /// non-pooled allocator that frees and reallocates exact-size buffers
    /// every iteration — what eager buffer management avoids).
    pub fn shrink_to_fit(&mut self) {
        self.data.shrink_to_fit();
        let new_bytes = self.data.capacity() * std::mem::size_of::<T>();
        if new_bytes < self.accounted_bytes {
            self.device.tracker().free(self.accounted_bytes - new_bytes);
            self.accounted_bytes = new_bytes;
        }
    }

    /// Consumes the buffer and returns the backing vector, releasing the
    /// device accounting for it.
    pub fn into_vec(mut self) -> Vec<T> {
        self.device.tracker().free(self.accounted_bytes);
        self.accounted_bytes = 0;
        std::mem::take(&mut self.data)
    }
}

impl<T: DeviceValue> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        if self.accounted_bytes > 0 {
            self.device.tracker().free(self.accounted_bytes);
        }
    }
}

impl<T: DeviceValue + PartialEq> PartialEq for DeviceBuffer<T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn small_device() -> Device {
        Device::new(DeviceProfile::tiny_test_device(4096))
    }

    #[test]
    fn from_slice_round_trips() {
        let d = small_device();
        let buf = d.buffer_from_slice(&[5u32, 6, 7]).unwrap();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.to_vec(), vec![5, 6, 7]);
        assert!(!buf.is_empty());
    }

    #[test]
    fn drop_releases_device_memory() {
        let d = small_device();
        {
            let _buf = d.buffer_from_slice(&vec![0u32; 512]).unwrap();
            assert!(d.tracker().in_use() >= 2048);
        }
        assert_eq!(d.tracker().in_use(), 0);
    }

    #[test]
    fn oversized_allocation_is_oom() {
        let d = small_device();
        let err = d.buffer_from_slice(&vec![0u32; 4096]).unwrap_err();
        assert!(matches!(err, crate::DeviceError::OutOfMemory { .. }));
    }

    #[test]
    fn extend_grows_and_accounts() {
        let d = small_device();
        let mut buf = d.buffer_from_slice(&[1u32, 2]).unwrap();
        buf.extend_from_slice(&[3, 4, 5]).unwrap();
        assert_eq!(buf.to_vec(), vec![1, 2, 3, 4, 5]);
        assert!(buf.accounted_bytes() >= 5 * 4);
    }

    #[test]
    fn reserve_total_is_idempotent_for_smaller_requests() {
        let d = small_device();
        let mut buf = d.buffer_from_slice(&[1u32, 2, 3, 4]).unwrap();
        let before = buf.accounted_bytes();
        buf.reserve_total(2).unwrap();
        assert_eq!(buf.accounted_bytes(), before);
    }

    #[test]
    fn into_vec_releases_accounting() {
        let d = small_device();
        let buf = d.buffer_from_slice(&[9u32; 16]).unwrap();
        let v = buf.into_vec();
        assert_eq!(v.len(), 16);
        assert_eq!(d.tracker().in_use(), 0);
    }

    #[test]
    fn shrink_to_fit_returns_slack_to_the_device() {
        let d = small_device();
        let mut buf = d.buffer_from_slice(&[1u32, 2]).unwrap();
        buf.reserve_total(256).unwrap();
        let before = d.tracker().in_use();
        buf.shrink_to_fit();
        assert!(d.tracker().in_use() < before);
        assert_eq!(buf.to_vec(), vec![1, 2]);
    }

    #[test]
    fn truncate_and_clear_keep_capacity() {
        let d = small_device();
        let mut buf = d.buffer_from_slice(&[1u32, 2, 3, 4]).unwrap();
        let cap = buf.capacity();
        buf.truncate(2);
        assert_eq!(buf.len(), 2);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.capacity(), cap);
    }
}
