//! Simulated multi-device topologies: N device profiles wired together by
//! an inter-device link model.
//!
//! The paper's scaling argument (Section 6.6) is that Datalog fixpoints are
//! memory-bandwidth-bound, which makes multi-GPU scaling a *data-movement*
//! question: the compute side partitions cleanly by key hash, so what
//! decides scalability is how many bytes cross the inter-device links at
//! each delta exchange and how expensive a link crossing is. A
//! [`DeviceTopology`] captures exactly that — a set of
//! [`DeviceProfile`]s plus one [`LinkProfile`] (per-message latency and
//! bandwidth, with NVLink-like and PCIe-like presets) — and the
//! [`TopologyReport`] types carry the per-device modeled attribution the
//! multi-GPU backend produces back to callers.
//!
//! Nothing in this module executes anything: the topology is a *model*.
//! The multi-GPU backend in `gpulog` pins each hash shard to one modeled
//! device, attributes per-shard work to that device's
//! [`crate::metrics::Metrics`], and charges every cross-device row moved
//! during the delta exchange to the link via
//! [`LinkProfile::transfer_sec`].

use crate::profile::DeviceProfile;
use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;

/// The inter-device interconnect of a [`DeviceTopology`]: a fixed
/// per-message latency plus a sustained point-to-point bandwidth.
///
/// A *message* is one producer-to-destination transfer within one exchange
/// (a real implementation would issue one `cudaMemcpyPeer`/NCCL send per
/// such pair), so an all-to-all exchange over `S` devices costs up to
/// `S - 1` message latencies per receiving device plus its incoming bytes
/// over the link bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// Reporting name, e.g. `"NVLink-like"`.
    pub name: String,
    /// Fixed latency charged per message, in seconds.
    pub latency_sec: f64,
    /// Sustained point-to-point bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl LinkProfile {
    /// An NVLink-class link: ~450 GB/s per direction, microsecond-scale
    /// peer-copy launch latency.
    pub fn nvlink_like() -> Self {
        LinkProfile {
            name: "NVLink-like".to_string(),
            latency_sec: 1.5e-6,
            bandwidth_bytes_per_sec: 4.5e11,
        }
    }

    /// A PCIe-class link: ~25 GB/s effective (Gen4 x16 with protocol
    /// overhead), higher per-copy latency through the host root complex.
    pub fn pcie_like() -> Self {
        LinkProfile {
            name: "PCIe-like".to_string(),
            latency_sec: 8.0e-6,
            bandwidth_bytes_per_sec: 2.5e10,
        }
    }

    /// Modeled seconds to move `bytes` split across `messages` transfers:
    /// `messages * latency + bytes / bandwidth`.
    pub fn transfer_sec(&self, bytes: u64, messages: u64) -> f64 {
        messages as f64 * self.latency_sec + bytes as f64 / self.bandwidth_bytes_per_sec
    }
}

/// A simulated multi-device topology: one [`DeviceProfile`] per modeled
/// device plus the [`LinkProfile`] connecting every pair. Non-empty by
/// construction — every constructor takes a [`NonZeroUsize`] count or
/// rejects an empty device list — so consumers never face a zero-device
/// topology.
///
/// # Examples
///
/// ```
/// use gpulog_device::topology::DeviceTopology;
/// use std::num::NonZeroUsize;
///
/// let four = NonZeroUsize::new(4).unwrap();
/// let topo = DeviceTopology::nvlink_like(four);
/// assert_eq!(topo.device_count().get(), 4);
/// assert!(topo.link().bandwidth_bytes_per_sec > 1e11);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceTopology {
    devices: Vec<DeviceProfile>,
    link: LinkProfile,
}

impl DeviceTopology {
    /// Builds a topology from an explicit device list, or `None` if the
    /// list is empty (an empty topology is unrepresentable).
    pub fn new(devices: Vec<DeviceProfile>, link: LinkProfile) -> Option<Self> {
        if devices.is_empty() {
            None
        } else {
            Some(DeviceTopology { devices, link })
        }
    }

    /// `count` identical devices behind one link model.
    pub fn homogeneous(profile: DeviceProfile, count: NonZeroUsize, link: LinkProfile) -> Self {
        DeviceTopology {
            devices: vec![profile; count.get()],
            link,
        }
    }

    /// `count` H100s on an NVLink-like interconnect — the DGX-style preset.
    pub fn nvlink_like(count: NonZeroUsize) -> Self {
        Self::homogeneous(
            DeviceProfile::nvidia_h100(),
            count,
            LinkProfile::nvlink_like(),
        )
    }

    /// `count` H100s on a PCIe-like interconnect — the commodity-server
    /// preset, where the exchange dominates much earlier.
    pub fn pcie_like(count: NonZeroUsize) -> Self {
        Self::homogeneous(
            DeviceProfile::nvidia_h100(),
            count,
            LinkProfile::pcie_like(),
        )
    }

    /// The modeled devices, in pinning order (shard `i` pins to device `i`).
    pub fn devices(&self) -> &[DeviceProfile] {
        &self.devices
    }

    /// Number of modeled devices (always at least one).
    pub fn device_count(&self) -> NonZeroUsize {
        NonZeroUsize::new(self.devices.len()).expect("topology is non-empty by construction")
    }

    /// The inter-device link model.
    pub fn link(&self) -> &LinkProfile {
        &self.link
    }
}

/// Per-device modeled attribution produced by a topology-aware backend:
/// the modeled compute seconds of the work pinned to this device plus its
/// share of the exchange traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceLaneReport {
    /// Device name plus pinning index, e.g. `"NVIDIA H100 #2"`.
    pub device: String,
    /// Modeled seconds of compute attributed to this device (roofline
    /// estimate over its attributed counters).
    pub modeled_compute_sec: f64,
    /// Bytes this device received over the link.
    pub exchange_in_bytes: u64,
    /// Bytes this device sent over the link.
    pub exchange_out_bytes: u64,
    /// Incoming link messages (per-message latency charges).
    pub exchange_in_messages: u64,
}

/// What a topology-aware backend modeled over one run: per-device lanes,
/// total exchange traffic, and the modeled critical path (each pipeline is
/// a bulk-synchronous step, so the run's critical path is the sum over
/// pipelines of the slowest device's compute plus its incoming transfer).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopologyReport {
    /// The link model's reporting name.
    pub link: String,
    /// One lane per modeled device, in pinning order.
    pub devices: Vec<DeviceLaneReport>,
    /// Total bytes that crossed the inter-device link.
    pub total_exchange_bytes: u64,
    /// Total link messages (latency charges).
    pub total_exchange_messages: u64,
    /// Modeled critical-path seconds: Σ over pipelines of
    /// `max over devices (compute + incoming transfer)`.
    pub modeled_critical_path_sec: f64,
    /// Modeled critical-path seconds of the *pipelined* schedule, where
    /// each delta merge is deferred and overlaps the next pipeline's
    /// compute: Σ over pipelines of `max over devices (max(compute +
    /// transfer − deferred merge share, carried merge debt))`, plus the
    /// final debt drain. Never above
    /// [`TopologyReport::modeled_critical_path_sec`]; the gap is the
    /// modeled win of hiding merges behind compute.
    pub modeled_pipelined_critical_path_sec: f64,
}

impl TopologyReport {
    /// Aggregate modeled device-seconds across every lane.
    pub fn total_compute_sec(&self) -> f64 {
        self.devices.iter().map(|d| d.modeled_compute_sec).sum()
    }

    /// Modeled multi-device speedup: aggregate device-seconds over the
    /// critical path. `1.0` for a single device (the two quantities
    /// coincide); above `1.0` whenever pinning actually overlaps work, and
    /// it degrades toward `1.0` (or below, on exchange-dominated
    /// workloads) as link traffic grows — the sRSP-style "synchronization
    /// cost decides scalability" term made visible.
    pub fn modeled_speedup(&self) -> f64 {
        if self.modeled_critical_path_sec > 0.0 {
            self.total_compute_sec() / self.modeled_critical_path_sec
        } else {
            1.0
        }
    }

    /// Difference of two cumulative reports (`self` taken after
    /// `earlier`): every monotonic total — per-lane compute and exchange
    /// tallies, link traffic, critical path — is subtracted, so a backend
    /// that accumulates across runs can report exactly one run's share.
    /// Falls back to `self` unchanged if the reports describe different
    /// topologies.
    #[must_use]
    pub fn since(&self, earlier: &TopologyReport) -> TopologyReport {
        if earlier.devices.len() != self.devices.len() || earlier.link != self.link {
            return self.clone();
        }
        TopologyReport {
            link: self.link.clone(),
            devices: self
                .devices
                .iter()
                .zip(&earlier.devices)
                .map(|(now, then)| DeviceLaneReport {
                    device: now.device.clone(),
                    modeled_compute_sec: (now.modeled_compute_sec - then.modeled_compute_sec)
                        .max(0.0),
                    exchange_in_bytes: now.exchange_in_bytes - then.exchange_in_bytes,
                    exchange_out_bytes: now.exchange_out_bytes - then.exchange_out_bytes,
                    exchange_in_messages: now.exchange_in_messages - then.exchange_in_messages,
                })
                .collect(),
            total_exchange_bytes: self.total_exchange_bytes - earlier.total_exchange_bytes,
            total_exchange_messages: self.total_exchange_messages - earlier.total_exchange_messages,
            modeled_critical_path_sec: (self.modeled_critical_path_sec
                - earlier.modeled_critical_path_sec)
                .max(0.0),
            modeled_pipelined_critical_path_sec: (self.modeled_pipelined_critical_path_sec
                - earlier.modeled_pipelined_critical_path_sec)
                .max(0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nz(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn presets_have_the_expected_relative_costs() {
        let nvlink = LinkProfile::nvlink_like();
        let pcie = LinkProfile::pcie_like();
        assert!(nvlink.bandwidth_bytes_per_sec > 10.0 * pcie.bandwidth_bytes_per_sec);
        assert!(nvlink.latency_sec < pcie.latency_sec);
        // Moving 1 GiB: bandwidth dominates, so PCIe is much slower.
        let bytes = 1u64 << 30;
        assert!(pcie.transfer_sec(bytes, 1) > 10.0 * nvlink.transfer_sec(bytes, 1));
    }

    #[test]
    fn transfer_sec_charges_latency_per_message() {
        let link = LinkProfile::nvlink_like();
        let one = link.transfer_sec(0, 1);
        let three = link.transfer_sec(0, 3);
        assert!((three - 3.0 * one).abs() < 1e-15);
        assert_eq!(link.transfer_sec(0, 0), 0.0);
    }

    #[test]
    fn topology_constructors_respect_counts() {
        let topo = DeviceTopology::nvlink_like(nz(4));
        assert_eq!(topo.device_count().get(), 4);
        assert_eq!(topo.devices().len(), 4);
        assert!(topo.devices().iter().all(|d| d.name == "NVIDIA H100"));
        assert_eq!(topo.link().name, "NVLink-like");
        let pcie = DeviceTopology::pcie_like(nz(2));
        assert_eq!(pcie.link().name, "PCIe-like");
    }

    #[test]
    fn empty_device_list_is_unrepresentable() {
        assert!(DeviceTopology::new(Vec::new(), LinkProfile::nvlink_like()).is_none());
        let one = DeviceTopology::new(vec![DeviceProfile::nvidia_a100()], LinkProfile::pcie_like())
            .unwrap();
        assert_eq!(one.device_count().get(), 1);
    }

    #[test]
    fn report_speedup_is_aggregate_over_critical_path() {
        let report = TopologyReport {
            link: "NVLink-like".into(),
            devices: vec![
                DeviceLaneReport {
                    device: "a".into(),
                    modeled_compute_sec: 2.0,
                    ..Default::default()
                },
                DeviceLaneReport {
                    device: "b".into(),
                    modeled_compute_sec: 2.0,
                    ..Default::default()
                },
            ],
            total_exchange_bytes: 0,
            total_exchange_messages: 0,
            modeled_critical_path_sec: 2.5,
            modeled_pipelined_critical_path_sec: 2.0,
        };
        assert!((report.total_compute_sec() - 4.0).abs() < 1e-12);
        assert!((report.modeled_speedup() - 1.6).abs() < 1e-12);
        assert_eq!(TopologyReport::default().modeled_speedup(), 1.0);
    }

    #[test]
    fn since_subtracts_both_critical_paths() {
        let lane = |sec: f64| DeviceLaneReport {
            device: "a".into(),
            modeled_compute_sec: sec,
            ..Default::default()
        };
        let earlier = TopologyReport {
            link: "NVLink-like".into(),
            devices: vec![lane(1.0)],
            total_exchange_bytes: 10,
            total_exchange_messages: 1,
            modeled_critical_path_sec: 1.0,
            modeled_pipelined_critical_path_sec: 0.75,
        };
        let later = TopologyReport {
            link: "NVLink-like".into(),
            devices: vec![lane(3.0)],
            total_exchange_bytes: 30,
            total_exchange_messages: 3,
            modeled_critical_path_sec: 3.0,
            modeled_pipelined_critical_path_sec: 2.25,
        };
        let run = later.since(&earlier);
        assert!((run.modeled_critical_path_sec - 2.0).abs() < 1e-12);
        assert!((run.modeled_pipelined_critical_path_sec - 1.5).abs() < 1e-12);
        assert_eq!(run.total_exchange_bytes, 20);
    }
}
