//! Error types for the simulated device.

use std::fmt;

/// Errors raised by device-memory and kernel-launch operations.
///
/// The simulated device mirrors the failure modes that matter to the paper's
/// evaluation: running out of device memory (the `OOM` rows of Tables 2 and
/// 3) and malformed launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// An allocation request exceeded the device's remaining VRAM.
    OutOfMemory {
        /// Bytes requested by the failed allocation.
        requested: usize,
        /// Bytes currently in use on the device.
        in_use: usize,
        /// The device's memory capacity in bytes.
        capacity: usize,
    },
    /// A kernel or primitive was invoked with inconsistent buffer sizes.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        what: String,
    },
    /// A launch configuration was invalid (zero-sized grid or block).
    InvalidLaunch {
        /// Human-readable description of the invalid configuration.
        what: String,
    },
    /// A hash-table load factor outside `(0, 1]` (including NaN) was
    /// supplied: sizing a table from it would produce a zero-slot or
    /// absurdly oversized allocation.
    InvalidLoadFactor {
        /// The rejected value, formatted for display.
        value: String,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} bytes with {in_use} in use of {capacity} capacity"
            ),
            DeviceError::ShapeMismatch { what } => write!(f, "shape mismatch: {what}"),
            DeviceError::InvalidLaunch { what } => write!(f, "invalid launch: {what}"),
            DeviceError::InvalidLoadFactor { value } => {
                write!(f, "invalid load factor {value}: must be in (0, 1]")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenient result alias used throughout the device crate.
pub type DeviceResult<T> = Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_out_of_memory_mentions_sizes() {
        let err = DeviceError::OutOfMemory {
            requested: 128,
            in_use: 64,
            capacity: 100,
        };
        let text = err.to_string();
        assert!(text.contains("128"));
        assert!(text.contains("64"));
        assert!(text.contains("100"));
    }

    #[test]
    fn display_invalid_load_factor_mentions_range() {
        let err = DeviceError::InvalidLoadFactor {
            value: "NaN".into(),
        };
        let text = err.to_string();
        assert!(text.contains("NaN"));
        assert!(text.contains("(0, 1]"));
    }

    #[test]
    fn display_shape_mismatch() {
        let err = DeviceError::ShapeMismatch {
            what: "keys and values differ".into(),
        };
        assert!(err.to_string().contains("keys and values differ"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<DeviceError>();
    }
}
