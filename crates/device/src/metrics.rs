//! Execution metrics recorded by the simulated device.
//!
//! Every primitive and kernel launch reports the work it performed — bytes
//! read and written, simple operations executed, atomic operations issued,
//! kernel launches, and allocator events. The counters are the raw input to
//! the analytic cost model ([`crate::cost`]) and to the phase-breakdown
//! figure of the paper (Figure 6), and they also expose the memory-footprint
//! numbers reported in Table 1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A snapshot of the device counters at a point in time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Bytes read from device memory by kernels and primitives.
    pub bytes_read: u64,
    /// Bytes written to device memory by kernels and primitives.
    pub bytes_written: u64,
    /// Simple arithmetic/comparison operations executed.
    pub ops: u64,
    /// Atomic read-modify-write operations (CAS, atomic-min) executed.
    pub atomic_ops: u64,
    /// Number of kernel launches issued.
    pub kernel_launches: u64,
    /// Individual hash-table insertions performed by incremental index
    /// maintenance (delta keys inserted into an existing hash layer).
    pub hash_inserts: u64,
    /// Hash-layer rebuilds/rehashes: from-scratch rebuilds triggered by a
    /// merge exceeding the load factor, plus capacity-growth rehashes
    /// performed while reserving. Fresh builds of new tables don't count.
    pub hash_rebuilds: u64,
    /// Counting-scatter passes executed by the radix sorts, at any bucket
    /// granularity (one full LSD digit pass and one MSD bucket split each
    /// count as one pass).
    pub sort_passes: u64,
    /// Number of parallel dispatches handed to the persistent worker pool
    /// (launches small enough to run inline on the calling thread are not
    /// dispatches).
    pub pool_dispatches: u64,
    /// Wall nanoseconds spent inside pool dispatches (hand-off, execution,
    /// and completion handshake).
    pub dispatch_nanos: u64,
    /// OS threads spawned by the device's worker pool. Constant after
    /// device creation: kernel launches reuse the parked pool, so a
    /// fixpoint run must not move this counter.
    pub threads_spawned: u64,
    /// Number of allocations served by the pool.
    pub allocations: u64,
    /// Number of allocations satisfied by reusing a pooled buffer.
    pub pool_reuses: u64,
    /// Bytes obtained from fresh (non-pooled) allocations.
    pub bytes_allocated: u64,
    /// Bytes currently allocated on the device.
    pub bytes_in_use: u64,
    /// High-water mark of bytes allocated on the device.
    pub peak_bytes_in_use: u64,
    /// Background epochs (deferred merge jobs) currently in flight — a
    /// gauge, not a monotonic counter.
    pub epochs_in_flight: u64,
    /// High-water mark of concurrently in-flight background epochs.
    pub peak_epochs_in_flight: u64,
    /// Wall nanoseconds a background epoch was outstanding while the
    /// submitting thread kept executing foreground work (submission to the
    /// start of its drain). This is the window pipelining hides; zero means
    /// every epoch was waited on immediately, i.e. the schedule degraded to
    /// bulk-synchronous.
    pub overlap_nanos: u64,
    /// Wall nanoseconds the foreground thread spent blocked waiting for an
    /// in-flight background epoch to finish (the pipeline stalled).
    pub pipeline_stall_nanos: u64,
    /// Times the pipelined backend's adaptive merge policy deferred a drain
    /// past its base batch size because the pending delta rows were still
    /// small relative to |full|.
    pub adaptive_merge_batches: u64,
}

impl CounterSnapshot {
    /// Total bytes moved (read + written).
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Difference of two snapshots (`self` taken after `earlier`).
    ///
    /// Monotonic counters are subtracted; gauges (`bytes_in_use`,
    /// `peak_bytes_in_use`, `epochs_in_flight`, `peak_epochs_in_flight`)
    /// keep the later value.
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            ops: self.ops - earlier.ops,
            atomic_ops: self.atomic_ops - earlier.atomic_ops,
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            hash_inserts: self.hash_inserts - earlier.hash_inserts,
            hash_rebuilds: self.hash_rebuilds - earlier.hash_rebuilds,
            sort_passes: self.sort_passes - earlier.sort_passes,
            pool_dispatches: self.pool_dispatches - earlier.pool_dispatches,
            dispatch_nanos: self.dispatch_nanos - earlier.dispatch_nanos,
            threads_spawned: self.threads_spawned - earlier.threads_spawned,
            allocations: self.allocations - earlier.allocations,
            pool_reuses: self.pool_reuses - earlier.pool_reuses,
            bytes_allocated: self.bytes_allocated - earlier.bytes_allocated,
            bytes_in_use: self.bytes_in_use,
            peak_bytes_in_use: self.peak_bytes_in_use,
            epochs_in_flight: self.epochs_in_flight,
            peak_epochs_in_flight: self.peak_epochs_in_flight,
            overlap_nanos: self.overlap_nanos - earlier.overlap_nanos,
            pipeline_stall_nanos: self.pipeline_stall_nanos - earlier.pipeline_stall_nanos,
            adaptive_merge_batches: self.adaptive_merge_batches - earlier.adaptive_merge_batches,
        }
    }
}

/// Thread-safe metric counters shared by all components of a device.
#[derive(Debug, Default)]
pub struct Metrics {
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    ops: AtomicU64,
    atomic_ops: AtomicU64,
    kernel_launches: AtomicU64,
    hash_inserts: AtomicU64,
    hash_rebuilds: AtomicU64,
    sort_passes: AtomicU64,
    pool_dispatches: AtomicU64,
    dispatch_nanos: AtomicU64,
    threads_spawned: AtomicU64,
    allocations: AtomicU64,
    pool_reuses: AtomicU64,
    bytes_allocated: AtomicU64,
    bytes_in_use: AtomicUsize,
    peak_bytes_in_use: AtomicUsize,
    epochs_in_flight: AtomicU64,
    peak_epochs_in_flight: AtomicU64,
    overlap_nanos: AtomicU64,
    pipeline_stall_nanos: AtomicU64,
    adaptive_merge_batches: AtomicU64,
    phase_times: Mutex<PhaseTable>,
}

/// The phase buckets plus a generation counter bumped by
/// [`Metrics::reset_phase_times`]: a [`PhaseTimer`] that outlives a reset
/// carries the old generation, so its exit is ignored instead of closing a
/// span some newer timer opened.
#[derive(Debug, Default)]
struct PhaseTable {
    generation: u64,
    slots: HashMap<String, PhaseSlot>,
}

/// Per-phase accumulator: a completed-time total plus the currently open
/// span. [`PhaseTimer`]s accumulate the *union* of their intervals — the
/// span opens when the first timer for the phase starts and closes when the
/// last one drops — so timers nested in one another or running concurrently
/// on worker-pool threads (sharded ops run `S` tasks per epoch) never count
/// the same wall nanosecond twice. Without the union, a 4-worker sharded
/// sort would report ~4x its wall time in the `sort` bucket.
#[derive(Debug, Default)]
struct PhaseSlot {
    total: Duration,
    active: usize,
    span_start: Option<Instant>,
}

impl Metrics {
    /// Creates a zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` bytes read from device memory.
    pub fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` bytes written to device memory.
    pub fn add_bytes_written(&self, n: u64) {
        self.bytes_written.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` simple operations.
    pub fn add_ops(&self, n: u64) {
        self.ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` atomic read-modify-write operations.
    pub fn add_atomic_ops(&self, n: u64) {
        self.atomic_ops.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a kernel launch.
    pub fn add_kernel_launch(&self) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` incremental hash-table insertions.
    pub fn add_hash_inserts(&self, n: u64) {
        self.hash_inserts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one hash-layer rebuild (overflow rebuild or growth rehash).
    pub fn add_hash_rebuild(&self) {
        self.hash_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` radix counting-scatter passes.
    pub fn add_sort_passes(&self, n: u64) {
        self.sort_passes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one parallel dispatch to the worker pool and the wall time
    /// it took end to end.
    pub fn add_pool_dispatch(&self, elapsed: Duration) {
        self.pool_dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatch_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records that the worker pool spawned `n` OS threads (happens once,
    /// at pool construction).
    pub fn add_threads_spawned(&self, n: u64) {
        self.threads_spawned.fetch_add(n, Ordering::Relaxed);
    }

    /// OS threads spawned by the device's worker pool so far.
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Records that a background epoch (a deferred merge job) was handed to
    /// the device's background lane: raises the in-flight gauge and its
    /// high-water mark.
    pub fn epoch_submitted(&self) {
        let now = self.epochs_in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_epochs_in_flight.fetch_max(now, Ordering::Relaxed);
    }

    /// Records that a background epoch finished executing.
    pub fn epoch_retired(&self) {
        self.epochs_in_flight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records `n` nanoseconds during which a background epoch was
    /// outstanding behind foreground work (see
    /// [`CounterSnapshot::overlap_nanos`]).
    pub fn add_overlap_nanos(&self, n: u64) {
        self.overlap_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` nanoseconds the foreground thread spent blocked on an
    /// in-flight background epoch.
    pub fn add_pipeline_stall_nanos(&self, n: u64) {
        self.pipeline_stall_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one adaptive merge-batch deferral (see
    /// [`CounterSnapshot::adaptive_merge_batches`]).
    pub fn add_adaptive_merge_batch(&self) {
        self.adaptive_merge_batches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an allocation of `bytes`, returning the new in-use total.
    pub fn record_alloc(&self, bytes: usize, reused: bool) -> usize {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        if reused {
            self.pool_reuses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.bytes_allocated
                .fetch_add(bytes as u64, Ordering::Relaxed);
        }
        let now = self.bytes_in_use.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes_in_use.fetch_max(now, Ordering::Relaxed);
        now
    }

    /// Records that `bytes` were released back to the device.
    pub fn record_free(&self, bytes: usize) {
        self.bytes_in_use.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use.load(Ordering::Relaxed)
    }

    /// High-water mark of allocated bytes.
    pub fn peak_bytes_in_use(&self) -> usize {
        self.peak_bytes_in_use.load(Ordering::Relaxed)
    }

    /// Adds `elapsed` wall time to the named phase bucket (e.g. `"join"`,
    /// `"merge"`, `"dedup"`). Phase buckets feed Figure 6. This is a flat
    /// add with no overlap coalescing; scoped timing should use
    /// [`PhaseTimer`], whose concurrent spans count each wall nanosecond
    /// once.
    pub fn add_phase_time(&self, phase: &str, elapsed: Duration) {
        let mut phases = self.phase_times.lock().expect("phase timer lock poisoned");
        phases.slots.entry(phase.to_string()).or_default().total += elapsed;
    }

    /// Opens a [`PhaseTimer`] span for `phase`: the phase's wall clock
    /// starts when its first concurrent span opens. Returns the current
    /// phase-table generation, which the matching [`Metrics::phase_exit`]
    /// must present.
    fn phase_enter(&self, phase: &str) -> u64 {
        let mut phases = self.phase_times.lock().expect("phase timer lock poisoned");
        let generation = phases.generation;
        let slot = phases.slots.entry(phase.to_string()).or_default();
        slot.active += 1;
        if slot.active == 1 {
            slot.span_start = Some(Instant::now());
        }
        generation
    }

    /// Closes a [`PhaseTimer`] span for `phase`: the elapsed union is
    /// accumulated when the last concurrent span closes. A timer whose
    /// `generation` predates a `reset_phase_times` is ignored — it must
    /// not decrement (and prematurely close) a span opened after the
    /// reset.
    fn phase_exit(&self, phase: &str, generation: u64) {
        let mut phases = self.phase_times.lock().expect("phase timer lock poisoned");
        if phases.generation != generation {
            return;
        }
        let Some(slot) = phases.slots.get_mut(phase) else {
            return;
        };
        if slot.active == 0 {
            return;
        }
        slot.active -= 1;
        if slot.active == 0 {
            if let Some(start) = slot.span_start.take() {
                slot.total += start.elapsed();
            }
        }
    }

    /// Returns the accumulated wall time per phase (completed spans only).
    pub fn phase_times(&self) -> HashMap<String, Duration> {
        self.phase_times
            .lock()
            .expect("phase timer lock poisoned")
            .slots
            .iter()
            .map(|(phase, slot)| (phase.clone(), slot.total))
            .collect()
    }

    /// Clears the per-phase timers (counter totals are left untouched) and
    /// bumps the generation so still-open [`PhaseTimer`]s from before the
    /// reset are ignored at exit.
    pub fn reset_phase_times(&self) {
        let mut phases = self.phase_times.lock().expect("phase timer lock poisoned");
        phases.generation += 1;
        phases.slots.clear();
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            ops: self.ops.load(Ordering::Relaxed),
            atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            hash_inserts: self.hash_inserts.load(Ordering::Relaxed),
            hash_rebuilds: self.hash_rebuilds.load(Ordering::Relaxed),
            sort_passes: self.sort_passes.load(Ordering::Relaxed),
            pool_dispatches: self.pool_dispatches.load(Ordering::Relaxed),
            dispatch_nanos: self.dispatch_nanos.load(Ordering::Relaxed),
            threads_spawned: self.threads_spawned.load(Ordering::Relaxed),
            allocations: self.allocations.load(Ordering::Relaxed),
            pool_reuses: self.pool_reuses.load(Ordering::Relaxed),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
            bytes_in_use: self.bytes_in_use.load(Ordering::Relaxed) as u64,
            peak_bytes_in_use: self.peak_bytes_in_use.load(Ordering::Relaxed) as u64,
            epochs_in_flight: self.epochs_in_flight.load(Ordering::Relaxed),
            peak_epochs_in_flight: self.peak_epochs_in_flight.load(Ordering::Relaxed),
            overlap_nanos: self.overlap_nanos.load(Ordering::Relaxed),
            pipeline_stall_nanos: self.pipeline_stall_nanos.load(Ordering::Relaxed),
            adaptive_merge_batches: self.adaptive_merge_batches.load(Ordering::Relaxed),
        }
    }
}

/// RAII guard that adds the wall time of its scope to a named device-level
/// phase bucket when dropped. Used by the sort / merge / index-maintenance
/// primitives so the device can report a phase breakdown without every
/// caller threading timers by hand.
///
/// Overlapping timers for the same phase — nested scopes, or the `S`
/// concurrent shard tasks of a sharded-op epoch — accumulate the **union**
/// of their intervals, not the sum: the phase's accumulated nanos can never
/// exceed the wall time that actually elapsed while at least one timer was
/// open.
#[derive(Debug)]
pub struct PhaseTimer<'a> {
    metrics: &'a Metrics,
    phase: &'static str,
    generation: u64,
}

impl<'a> PhaseTimer<'a> {
    /// Starts timing `phase` against `metrics`.
    pub fn new(metrics: &'a Metrics, phase: &'static str) -> Self {
        let generation = metrics.phase_enter(phase);
        PhaseTimer {
            metrics,
            phase,
            generation,
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.metrics.phase_exit(self.phase, self.generation);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.add_bytes_read(10);
        m.add_bytes_read(5);
        m.add_bytes_written(7);
        m.add_ops(3);
        m.add_atomic_ops(2);
        m.add_kernel_launch();
        let s = m.snapshot();
        assert_eq!(s.bytes_read, 15);
        assert_eq!(s.bytes_written, 7);
        assert_eq!(s.bytes_moved(), 22);
        assert_eq!(s.ops, 3);
        assert_eq!(s.atomic_ops, 2);
        assert_eq!(s.kernel_launches, 1);
    }

    #[test]
    fn alloc_free_tracks_peak() {
        let m = Metrics::new();
        m.record_alloc(100, false);
        m.record_alloc(50, true);
        assert_eq!(m.bytes_in_use(), 150);
        assert_eq!(m.peak_bytes_in_use(), 150);
        m.record_free(100);
        assert_eq!(m.bytes_in_use(), 50);
        assert_eq!(m.peak_bytes_in_use(), 150);
        let s = m.snapshot();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.pool_reuses, 1);
    }

    #[test]
    fn snapshot_since_subtracts_monotonic_counters() {
        let m = Metrics::new();
        m.add_bytes_read(10);
        let before = m.snapshot();
        m.add_bytes_read(25);
        m.add_kernel_launch();
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.bytes_read, 25);
        assert_eq!(delta.kernel_launches, 1);
    }

    #[test]
    fn phase_times_accumulate_and_reset() {
        let m = Metrics::new();
        m.add_phase_time("join", Duration::from_millis(5));
        m.add_phase_time("join", Duration::from_millis(7));
        m.add_phase_time("merge", Duration::from_millis(3));
        let phases = m.phase_times();
        assert_eq!(phases["join"], Duration::from_millis(12));
        assert_eq!(phases["merge"], Duration::from_millis(3));
        m.reset_phase_times();
        assert!(m.phase_times().is_empty());
    }

    #[test]
    fn concurrent_phase_timers_never_exceed_wall_time() {
        // Regression: sharded ops run S tasks per worker-pool epoch, each
        // opening a PhaseTimer for the same phase. Summing per-task spans
        // reported ~S x the wall time; the union accounting must keep the
        // phase total at or below the elapsed wall clock.
        let m = std::sync::Arc::new(Metrics::new());
        let wall_start = Instant::now();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    let _t = PhaseTimer::new(&m, "sort");
                    std::thread::sleep(Duration::from_millis(30));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let wall = wall_start.elapsed();
        let sort = m.phase_times()["sort"];
        assert!(
            sort <= wall,
            "phase nanos ({sort:?}) must not exceed wall nanos ({wall:?})"
        );
        // And the union still measures real time: all four spans overlap,
        // so the total is at least one sleep long.
        assert!(sort >= Duration::from_millis(30));
    }

    #[test]
    fn nested_phase_timers_count_their_union_once() {
        let m = Metrics::new();
        let wall_start = Instant::now();
        {
            let _outer = PhaseTimer::new(&m, "merge");
            std::thread::sleep(Duration::from_millis(5));
            {
                let _inner = PhaseTimer::new(&m, "merge");
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let wall = wall_start.elapsed();
        let merge = m.phase_times()["merge"];
        assert!(merge <= wall, "nested spans must not double-count");
        assert!(merge >= Duration::from_millis(15));
    }

    #[test]
    fn phase_exit_after_reset_is_ignored() {
        let m = Metrics::new();
        let timer = PhaseTimer::new(&m, "sort");
        m.reset_phase_times();
        drop(timer);
        assert!(!m.phase_times().contains_key("sort"));
    }

    #[test]
    fn stale_timer_from_before_a_reset_cannot_close_a_newer_span() {
        let m = Metrics::new();
        let stale = PhaseTimer::new(&m, "sort");
        m.reset_phase_times();
        let fresh = PhaseTimer::new(&m, "sort");
        std::thread::sleep(Duration::from_millis(5));
        // The stale timer's exit carries the old generation: it must not
        // decrement the fresh span's active count or credit its time.
        drop(stale);
        std::thread::sleep(Duration::from_millis(5));
        drop(fresh);
        let sort = m.phase_times()["sort"];
        assert!(
            sort >= Duration::from_millis(10),
            "the fresh span must cover its full lifetime, got {sort:?}"
        );
    }

    #[test]
    fn pool_counters_accumulate_and_subtract() {
        let m = Metrics::new();
        m.add_threads_spawned(3);
        m.add_pool_dispatch(Duration::from_micros(5));
        let before = m.snapshot();
        m.add_pool_dispatch(Duration::from_micros(7));
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.pool_dispatches, 1);
        assert_eq!(delta.dispatch_nanos, 7_000);
        assert_eq!(delta.threads_spawned, 0);
        assert_eq!(m.threads_spawned(), 3);
    }

    #[test]
    fn index_maintenance_counters_accumulate_and_subtract() {
        let m = Metrics::new();
        m.add_hash_inserts(40);
        m.add_sort_passes(3);
        let before = m.snapshot();
        m.add_hash_inserts(2);
        m.add_hash_rebuild();
        m.add_sort_passes(5);
        let delta = m.snapshot().since(&before);
        assert_eq!(delta.hash_inserts, 2);
        assert_eq!(delta.hash_rebuilds, 1);
        assert_eq!(delta.sort_passes, 5);
        assert_eq!(m.snapshot().hash_inserts, 42);
    }

    #[test]
    fn pipeline_counters_track_gauge_peak_and_nanos() {
        let m = Metrics::new();
        m.epoch_submitted();
        m.epoch_submitted();
        assert_eq!(m.snapshot().epochs_in_flight, 2);
        assert_eq!(m.snapshot().peak_epochs_in_flight, 2);
        m.epoch_retired();
        assert_eq!(m.snapshot().epochs_in_flight, 1);
        assert_eq!(m.snapshot().peak_epochs_in_flight, 2);
        m.add_overlap_nanos(500);
        m.add_pipeline_stall_nanos(40);
        let before = m.snapshot();
        m.add_overlap_nanos(100);
        m.epoch_retired();
        let delta = m.snapshot().since(&before);
        // Nanos subtract; the epoch gauges keep the later value.
        assert_eq!(delta.overlap_nanos, 100);
        assert_eq!(delta.pipeline_stall_nanos, 0);
        assert_eq!(delta.epochs_in_flight, 0);
        assert_eq!(delta.peak_epochs_in_flight, 2);
    }

    #[test]
    fn metrics_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Metrics>();
    }
}
