//! The persistent worker pool behind [`crate::Executor`].
//!
//! CUDA amortizes thread management across an application's lifetime: the
//! GPU's schedulers are always resident and a kernel launch only hands them
//! a grid description. The first version of this simulated device instead
//! spawned fresh OS threads on *every* kernel launch — per-launch costs in
//! the hundreds of microseconds that dwarfed the modeled kernel overhead
//! and made the harness, not the algorithms, the bottleneck.
//!
//! [`WorkerPool`] restores the CUDA cost shape. A fixed set of worker
//! threads is spawned once, parks on a condvar, and is handed work as an
//! *epoch*: a type-erased `Fn(usize)` task body plus a task count. Workers
//! (and the dispatching thread, which participates instead of idling) claim
//! task indices from a shared atomic counter until the epoch is drained,
//! so uneven task sizes balance dynamically. The dispatcher blocks until
//! every worker has checked out of the epoch, which is what makes lending
//! the caller's stack-borrowed closure to the workers sound.
//!
//! Every spawn and dispatch is counted — through [`Metrics`] when the pool
//! belongs to a device — so a fixpoint run can assert that evaluation
//! spawns zero threads after warmup (see `threads_spawned` in
//! [`crate::CounterSnapshot`]).

use crate::metrics::Metrics;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

thread_local! {
    /// Set while the current thread is a pool worker executing a task, or a
    /// dispatcher inside [`WorkerPool::run`]. Nested dispatches from such a
    /// thread run inline instead of deadlocking on the dispatch lock.
    static IN_POOL_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// Permanently marks the calling thread as living inside the pool context,
/// exactly as [`worker_loop`] marks pool workers: any nested dispatch from
/// this thread runs inline instead of contending on the dispatch lock. Used
/// by the device's background merge lane, whose jobs call device kernels.
pub(crate) fn enter_pool_context_forever() {
    IN_POOL_CONTEXT.with(|ctx| ctx.set(true));
}

/// Locks a mutex, tolerating poisoning: every critical section in this
/// module is short and panic-free, so a poisoned flag only means some
/// *task body* panicked while a guard elsewhere was held — the protected
/// state itself is consistent.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// RAII guard marking the current thread as inside a pool dispatch; the
/// previous value is restored on drop (including on unwind).
struct PoolContextGuard {
    prev: bool,
}

impl PoolContextGuard {
    fn enter() -> Self {
        let prev = IN_POOL_CONTEXT.with(Cell::get);
        IN_POOL_CONTEXT.with(|ctx| ctx.set(true));
        PoolContextGuard { prev }
    }
}

impl Drop for PoolContextGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_POOL_CONTEXT.with(|ctx| ctx.set(prev));
    }
}

/// One epoch of work: a borrowed task body lent to the workers for the
/// duration of a single dispatch.
#[derive(Clone, Copy)]
struct Job {
    /// Type-erased pointer to the dispatcher's `Fn(usize) + Sync` closure.
    /// Valid only while the dispatch that published it is still blocked in
    /// [`WorkerPool::run`].
    task: *const (dyn Fn(usize) + Sync),
    tasks: usize,
}

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the dispatch protocol guarantees it outlives every worker's use: the
// dispatcher does not return from `run` until `active` drops to zero.
unsafe impl Send for Job {}

struct PoolState {
    /// Monotonic dispatch counter; a change signals a new job.
    epoch: u64,
    /// The job of the current epoch, if one is in flight.
    job: Option<Job>,
    /// Workers that have not yet checked out of the current epoch.
    active: usize,
    /// Whether any worker's task body panicked during the current epoch.
    panicked: bool,
    /// Set once, when the pool is dropped.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The dispatcher parks here until `active` reaches zero.
    done_cv: Condvar,
    /// Task-index claim counter for the current epoch.
    next_task: AtomicUsize,
}

/// A fixed-size pool of long-lived, parked worker threads.
///
/// The pool for a `workers`-wide executor holds `workers - 1` threads; the
/// dispatching thread always works alongside them, so a one-worker pool
/// holds no threads at all and every dispatch runs inline.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
    /// Serializes dispatches from concurrent device handles.
    dispatch_lock: Mutex<()>,
    threads_spawned: AtomicU64,
    dispatches: AtomicU64,
    dispatch_nanos: AtomicU64,
    metrics: Option<Arc<Metrics>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .field("dispatches", &self.dispatches.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool backing a `workers`-wide executor (`workers - 1`
    /// threads). When `metrics` is given, spawns and dispatches are also
    /// recorded there.
    pub fn new(workers: usize, metrics: Option<Arc<Metrics>>) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            next_task: AtomicUsize::new(0),
        });
        let thread_count = workers.max(1) - 1;
        let handles = (0..thread_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gpulog-device-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn device worker thread")
            })
            .collect::<Vec<_>>();
        if let Some(metrics) = &metrics {
            metrics.add_threads_spawned(thread_count as u64);
        }
        WorkerPool {
            shared,
            handles,
            dispatch_lock: Mutex::new(()),
            threads_spawned: AtomicU64::new(thread_count as u64),
            dispatches: AtomicU64::new(0),
            dispatch_nanos: AtomicU64::new(0),
            metrics,
        }
    }

    /// Number of pool threads (excluding the participating dispatcher).
    pub fn thread_count(&self) -> usize {
        self.handles.len()
    }

    /// Total OS threads this pool has ever spawned (constant after
    /// construction — that is the point).
    pub fn threads_spawned(&self) -> u64 {
        self.threads_spawned.load(Ordering::Relaxed)
    }

    /// Number of parallel dispatches handed to the pool so far.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Runs `task(t)` for every `t in 0..tasks`, spreading tasks across the
    /// pool. Blocks until all tasks have completed.
    ///
    /// Runs inline (on the calling thread, without touching the pool) when
    /// the pool is empty, there is at most one task, or the caller is
    /// itself inside a pool dispatch (nested data parallelism).
    ///
    /// # Panics
    ///
    /// Propagates a panic from the dispatcher's own task slice and panics
    /// with `"device worker thread panicked"` when a pool worker's slice
    /// panicked.
    pub fn run(&self, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        let nested = IN_POOL_CONTEXT.with(Cell::get);
        if self.handles.is_empty() || tasks == 1 || nested {
            for t in 0..tasks {
                task(t);
            }
            return;
        }
        let start = Instant::now();
        let _dispatch = lock_ignore_poison(&self.dispatch_lock);
        // Mark the dispatcher as in-pool so the task body can re-enter the
        // executor without deadlocking; restored even if the task panics.
        let _ctx = PoolContextGuard::enter();
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            self.shared.next_task.store(0, Ordering::Relaxed);
            // SAFETY (lifetime erasure): workers only dereference the task
            // pointer between this publication and the `active == 0`
            // handshake below, and this function does not return (or
            // unwind) before that handshake completes. The borrow
            // therefore strictly outlives every use.
            let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(
                    task,
                )
            };
            state.job = Some(Job {
                task: task_ptr,
                tasks,
            });
            state.epoch += 1;
            state.active = self.handles.len();
            state.panicked = false;
            self.shared.work_cv.notify_all();
        }
        // The dispatcher participates instead of idling.
        let own_result = catch_unwind(AssertUnwindSafe(|| {
            claim_and_run(&self.shared.next_task, tasks, task)
        }));
        // Handshake: wait until every worker has checked out of the epoch.
        let worker_panicked = {
            let mut state = lock_ignore_poison(&self.shared.state);
            while state.active > 0 {
                state = self
                    .shared
                    .done_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            state.job = None;
            state.panicked
        };
        let elapsed = start.elapsed();
        self.dispatches.fetch_add(1, Ordering::Relaxed);
        self.dispatch_nanos
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        if let Some(metrics) = &self.metrics {
            metrics.add_pool_dispatch(elapsed);
        }
        if let Err(panic) = own_result {
            resume_unwind(panic);
        }
        assert!(!worker_panicked, "device worker thread panicked");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_ignore_poison(&self.shared.state);
            state.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Claims task indices from `next_task` and runs them until none remain.
fn claim_and_run(next_task: &AtomicUsize, tasks: usize, task: &(dyn Fn(usize) + Sync)) {
    loop {
        let t = next_task.fetch_add(1, Ordering::Relaxed);
        if t >= tasks {
            return;
        }
        task(t);
    }
}

fn worker_loop(shared: &PoolShared) {
    IN_POOL_CONTEXT.with(|ctx| ctx.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_ignore_poison(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    if let Some(job) = state.job {
                        seen_epoch = state.epoch;
                        break job;
                    }
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // SAFETY: see `WorkerPool::run` — the dispatcher keeps the closure
        // alive until this thread decrements `active` below.
        let task = unsafe { &*job.task };
        let result = catch_unwind(AssertUnwindSafe(|| {
            claim_and_run(&shared.next_task, job.tasks, task)
        }));
        let mut state = lock_ignore_poison(&shared.state);
        if result.is_err() {
            state.panicked = true;
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(4, None);
        let n = 10_000;
        let counts: Vec<TestCounter> = (0..n).map(|_| TestCounter::new(0)).collect();
        pool.run(n, &|t| {
            counts[t].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pool_threads_are_spawned_once_and_reused() {
        let pool = WorkerPool::new(4, None);
        assert_eq!(pool.thread_count(), 3);
        assert_eq!(pool.threads_spawned(), 3);
        for _ in 0..100 {
            pool.run(64, &|_| {});
        }
        assert_eq!(pool.threads_spawned(), 3, "dispatches must not spawn");
        assert_eq!(pool.dispatches(), 100);
    }

    #[test]
    fn single_worker_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1, None);
        assert_eq!(pool.thread_count(), 0);
        let hits = TestCounter::new(0);
        pool.run(50, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 50);
        assert_eq!(pool.dispatches(), 0, "inline runs are not dispatches");
    }

    #[test]
    fn nested_dispatch_runs_inline_instead_of_deadlocking() {
        let pool = WorkerPool::new(4, None);
        let hits = TestCounter::new(0);
        pool.run(8, &|_| {
            // A task body that itself asks for parallelism.
            pool.run(4, &|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn tasks_outnumbering_workers_are_drained() {
        let pool = WorkerPool::new(3, None);
        let sum = TestCounter::new(0);
        pool.run(1000, &|t| {
            sum.fetch_add(t as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn uneven_remainders_run_every_task_exactly_once() {
        // Shard counts rarely divide worker counts evenly; sweep epochs
        // whose task counts leave every possible remainder (including
        // task counts below, equal to, and above the participant count)
        // and require exactly-once execution throughout.
        for workers in [2usize, 3, 4, 5] {
            let pool = WorkerPool::new(workers, None);
            for tasks in [
                1usize,
                workers - 1,
                workers,
                workers + 1,
                2 * workers + 3,
                97,
            ] {
                if tasks == 0 {
                    continue;
                }
                let counts: Vec<TestCounter> = (0..tasks).map(|_| TestCounter::new(0)).collect();
                pool.run(tasks, &|t| {
                    counts[t].fetch_add(1, Ordering::Relaxed);
                });
                for (t, c) in counts.iter().enumerate() {
                    assert_eq!(
                        c.load(Ordering::Relaxed),
                        1,
                        "task {t} of {tasks} on {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    fn remainder_heavy_epochs_are_not_drained_by_one_participant() {
        // Dynamic claiming must spread a 13-task epoch (remainder 1 over a
        // 4-wide pool) across multiple participants once per-task work is
        // long enough for the parked workers to wake. A static split that
        // strands the remainder — or a dispatcher that races through every
        // task before publishing the epoch — would fail this.
        use std::collections::HashSet;
        use std::sync::Mutex;
        let pool = WorkerPool::new(4, None);
        let participants: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        pool.run(13, &|_| {
            participants
                .lock()
                .unwrap()
                .insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        assert!(
            participants.lock().unwrap().len() >= 2,
            "a 26ms epoch must be shared with the parked workers"
        );
    }

    #[test]
    fn dispatches_are_counted_with_latency() {
        let pool = WorkerPool::new(2, None);
        pool.run(16, &|_| {});
        pool.run(16, &|_| {});
        assert_eq!(pool.dispatches(), 2);
        assert!(pool.dispatch_nanos.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn worker_panic_is_reported_and_pool_survives() {
        let pool = WorkerPool::new(4, None);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|t| {
                assert!(t != 13, "boom");
            });
        }));
        assert!(result.is_err());
        // The pool remains usable after a task panic.
        let hits = TestCounter::new(0);
        pool.run(64, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_dispatchers_serialize_safely() {
        let pool = Arc::new(WorkerPool::new(4, None));
        let total = Arc::new(TestCounter::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                scope.spawn(move || {
                    for _ in 0..50 {
                        pool.run(32, &|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 32);
    }
}
