//! Atomic helpers mirroring the CUDA intrinsics HISA construction relies on.
//!
//! The paper's hash-table construction (Algorithm 2) uses `atomicCAS` both
//! to claim hash slots and to keep the *smallest* sorted-index position per
//! key. These helpers wrap the equivalent `std::sync::atomic` loops so the
//! data-structure code reads like the paper's pseudo-code.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel marking an empty hash-table key slot.
pub const EMPTY_KEY: u64 = u64::MAX;
/// Sentinel marking an unwritten hash-table value slot.
pub const EMPTY_VALUE: u32 = u32::MAX;

/// Attempts to claim `slot` for `key`.
///
/// Returns `Ok(true)` when the slot was empty and is now freshly claimed,
/// `Ok(false)` when it already held `key`, and `Err(existing)` when the slot
/// is owned by a different key (the caller should continue linear probing).
pub fn claim_key_slot(slot: &AtomicU64, key: u64) -> Result<bool, u64> {
    match slot.compare_exchange(EMPTY_KEY, key, Ordering::AcqRel, Ordering::Acquire) {
        Ok(_) => Ok(true),
        Err(existing) if existing == key => Ok(false),
        Err(existing) => Err(existing),
    }
}

/// Atomically lowers `slot` to `value` if `value` is smaller than the value
/// currently stored (CUDA's `atomicMin` on a 32-bit cell). Returns the value
/// observed before the update.
pub fn atomic_min_u32(slot: &AtomicU32, value: u32) -> u32 {
    let mut current = slot.load(Ordering::Acquire);
    while value < current {
        match slot.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => return prev,
            Err(observed) => current = observed,
        }
    }
    current
}

/// Atomically raises `slot` to `value` if `value` is larger than the value
/// currently stored. Returns the value observed before the update.
pub fn atomic_max_u32(slot: &AtomicU32, value: u32) -> u32 {
    let mut current = slot.load(Ordering::Acquire);
    while value > current {
        match slot.compare_exchange_weak(current, value, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) => return prev,
            Err(observed) => current = observed,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn claim_empty_slot_succeeds() {
        let slot = AtomicU64::new(EMPTY_KEY);
        assert_eq!(claim_key_slot(&slot, 42), Ok(true));
        assert_eq!(slot.load(Ordering::Relaxed), 42);
    }

    #[test]
    fn claim_same_key_twice_reports_it_was_already_held() {
        let slot = AtomicU64::new(EMPTY_KEY);
        assert_eq!(claim_key_slot(&slot, 7), Ok(true));
        assert_eq!(claim_key_slot(&slot, 7), Ok(false));
    }

    #[test]
    fn claim_conflicting_key_reports_owner() {
        let slot = AtomicU64::new(EMPTY_KEY);
        claim_key_slot(&slot, 7).unwrap();
        assert_eq!(claim_key_slot(&slot, 9), Err(7));
    }

    #[test]
    fn atomic_min_keeps_smallest() {
        let slot = AtomicU32::new(EMPTY_VALUE);
        atomic_min_u32(&slot, 10);
        atomic_min_u32(&slot, 25);
        atomic_min_u32(&slot, 3);
        assert_eq!(slot.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn atomic_max_keeps_largest() {
        let slot = AtomicU32::new(0);
        atomic_max_u32(&slot, 10);
        atomic_max_u32(&slot, 4);
        assert_eq!(slot.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn atomic_min_under_contention_finds_global_minimum() {
        let slot = AtomicU32::new(EMPTY_VALUE);
        std::thread::scope(|s| {
            for t in 0..8u32 {
                let slot = &slot;
                s.spawn(move || {
                    for i in 0..1000u32 {
                        atomic_min_u32(slot, t * 1000 + i + 1);
                    }
                });
            }
        });
        assert_eq!(slot.load(Ordering::Relaxed), 1);
    }
}
