//! The data-parallel executor standing in for the CUDA thread grid.
//!
//! CUDA launches a grid of thread blocks whose threads process tuples in
//! stride units (paper Section 5.1). The simulated device keeps the same
//! programming model — a kernel is a function of the element index — but
//! maps it onto a fixed set of worker threads, each of which owns a
//! contiguous partition of the index space (the cache-friendly CPU analog
//! of coalesced strided access). Kernels that scatter variable-length
//! output use [`Executor::scatter_by_offsets`], which mirrors the two-pass
//! count/scan/write pattern GPU joins use.
//!
//! The workers are a persistent [`WorkerPool`]: threads are spawned once
//! when the executor is created and parked between launches, so a kernel
//! launch costs a condvar wake-up instead of OS thread creation — the CUDA
//! cost shape the paper's launch-overhead analysis assumes. Cloning an
//! executor (or the device that owns it) shares the pool, exactly as CUDA
//! streams share one device's schedulers.

use crate::metrics::Metrics;
use crate::worker_pool::WorkerPool;
use std::ops::Range;
use std::sync::{Arc, Mutex};

/// A simulated kernel-launch configuration.
///
/// Only the total worker count matters for the simulation; block and warp
/// sizes are carried so that divergence accounting and reporting can speak
/// the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of worker threads (the simulated grid width).
    pub workers: usize,
    /// Simulated threads per block.
    pub block_size: usize,
    /// Simulated warp width.
    pub warp_size: usize,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            workers: Executor::default_worker_count(),
            block_size: 256,
            warp_size: 32,
        }
    }
}

/// Data-parallel executor over a persistent, fixed-size worker pool.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
    pool: Arc<WorkerPool>,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(Self::default_worker_count())
    }
}

impl Executor {
    /// Creates an executor with `workers` worker threads (minimum 1). The
    /// backing pool threads are spawned here, once, and live until the last
    /// clone of this executor is dropped.
    pub fn new(workers: usize) -> Self {
        Self::build(workers, None)
    }

    /// [`Executor::new`], additionally reporting thread spawns and dispatch
    /// latency into `metrics` (used by [`crate::Device`]).
    pub fn with_metrics(workers: usize, metrics: Arc<Metrics>) -> Self {
        Self::build(workers, Some(metrics))
    }

    fn build(workers: usize, metrics: Option<Arc<Metrics>>) -> Self {
        let workers = workers.max(1);
        Executor {
            workers,
            pool: Arc::new(WorkerPool::new(workers, metrics)),
        }
    }

    /// The number of workers available on the host.
    pub fn default_worker_count() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }

    /// Number of worker threads this executor uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Total OS threads spawned for this executor over its lifetime
    /// (constant after construction; launches reuse the parked pool).
    pub fn threads_spawned(&self) -> u64 {
        self.pool.threads_spawned()
    }

    /// Number of parallel dispatches handed to the worker pool.
    pub fn pool_dispatches(&self) -> u64 {
        self.pool.dispatches()
    }

    /// Splits `n` items into at most `workers` contiguous, non-empty ranges.
    pub fn partitions(&self, n: usize) -> Vec<Range<usize>> {
        partition_ranges(n, self.workers)
    }

    /// Runs `run(i, jobs[i])` for every job, spreading jobs across the
    /// worker pool. This is the primitive the irregular parallel phases
    /// (per-run sorts, pairwise merges, pre-split output slices) build on:
    /// each job owns its data — typically a disjoint `&mut` slice — and is
    /// handed to exactly one worker.
    pub fn run_tasks<J, F>(&self, jobs: Vec<J>, run: F)
    where
        J: Send,
        F: Fn(usize, J) + Sync,
    {
        if jobs.len() <= 1 {
            for (i, job) in jobs.into_iter().enumerate() {
                run(i, job);
            }
            return;
        }
        // Each slot is taken exactly once, by whichever worker claims the
        // task index; the mutex is uncontended by construction.
        let slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        self.pool.run(slots.len(), &|i| {
            let job = slots[i]
                .lock()
                .expect("task slot lock poisoned")
                .take()
                .expect("task claimed twice");
            run(i, job);
        });
    }

    /// Runs `f(worker_id, range)` for each partition, in parallel.
    pub fn for_each_partition<F>(&self, n: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let parts = self.partitions(n);
        if parts.is_empty() {
            return;
        }
        let parts_ref = &parts;
        self.pool.run(parts.len(), &|p| f(p, parts_ref[p].clone()));
    }

    /// Runs `f(i)` for every index in `0..n`, in parallel.
    pub fn for_each_index<F>(&self, n: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.for_each_partition(n, |_, range| {
            for i in range {
                f(i);
            }
        });
    }

    /// Fills `out[i] = f(i)` for every slot, in parallel.
    pub fn fill<T, F>(&self, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let n = out.len();
        if n == 0 {
            return;
        }
        let parts = self.partitions(n);
        let mut jobs: Vec<(Range<usize>, &mut [T])> = Vec::with_capacity(parts.len());
        let mut rest = out;
        let mut consumed = 0;
        for range in parts {
            let take = range.end - consumed;
            let (head, tail) = rest.split_at_mut(take);
            jobs.push((range.clone(), head));
            rest = tail;
            consumed = range.end;
        }
        let f = &f;
        self.run_tasks(jobs, |_, (range, slice)| {
            for (slot, i) in slice.iter_mut().zip(range) {
                *slot = f(i);
            }
        });
    }

    /// Computes `vec![f(0), f(1), ..., f(n-1)]` in parallel.
    pub fn map_collect<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send + Default + Clone,
        F: Fn(usize) -> T + Sync,
    {
        let mut out = vec![T::default(); n];
        self.fill(&mut out, f);
        out
    }

    /// Two-pass scatter: item `i` owns the output slots
    /// `offsets[i]..offsets[i + 1]`, and `f(i, slot_slice)` fills them.
    ///
    /// `offsets` must be a non-decreasing sequence of length `n + 1` with
    /// `offsets[n] == out.len()`; this is exactly the result of an exclusive
    /// scan over per-item output counts.
    ///
    /// # Panics
    ///
    /// Panics if `offsets` is not monotonic or does not cover `out` exactly.
    pub fn scatter_by_offsets<T, F>(&self, out: &mut [T], offsets: &[usize], f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = offsets.len().saturating_sub(1);
        assert!(
            !offsets.is_empty() && offsets[n] == out.len(),
            "offsets must cover the output exactly (last offset {} vs output length {})",
            offsets.last().copied().unwrap_or(0),
            out.len()
        );
        if n == 0 {
            return;
        }
        let parts = self.partitions(n);
        // Pre-split the output into one contiguous slice per partition.
        let mut jobs: Vec<(Range<usize>, &mut [T])> = Vec::with_capacity(parts.len());
        let mut rest = out;
        let mut cursor = 0usize;
        for range in parts {
            let begin = offsets[range.start];
            let end = offsets[range.end];
            assert!(
                begin >= cursor && end >= begin,
                "offsets must be non-decreasing"
            );
            let (_, tail) = rest.split_at_mut(begin - cursor);
            let (mine, tail) = tail.split_at_mut(end - begin);
            jobs.push((range, mine));
            rest = tail;
            cursor = end;
        }
        let f = &f;
        self.run_tasks(jobs, |_, (range, slice)| {
            let base = offsets[range.start];
            for i in range {
                let lo = offsets[i] - base;
                let hi = offsets[i + 1] - base;
                f(i, &mut slice[lo..hi]);
            }
        });
    }
}

/// Splits `0..n` into at most `workers` contiguous non-empty ranges.
pub fn partition_ranges(n: usize, workers: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(n);
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn partition_ranges_cover_everything_without_overlap() {
        for n in [0usize, 1, 2, 7, 16, 1000, 1001] {
            for w in [1usize, 2, 3, 8, 64] {
                let parts = partition_ranges(n, w);
                let mut covered = 0;
                let mut cursor = 0;
                for r in &parts {
                    assert_eq!(r.start, cursor);
                    assert!(!r.is_empty());
                    covered += r.len();
                    cursor = r.end;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn for_each_index_touches_every_index_exactly_once() {
        let ex = Executor::new(8);
        let n = 10_000;
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        ex.for_each_index(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn fill_computes_every_slot() {
        let ex = Executor::new(5);
        let mut out = vec![0u64; 1234];
        ex.fill(&mut out, |i| (i as u64) * 3 + 1);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * 3 + 1);
        }
    }

    #[test]
    fn fill_on_single_worker_matches_parallel() {
        let mut a = vec![0u32; 777];
        let mut b = vec![0u32; 777];
        Executor::new(1).fill(&mut a, |i| i as u32 * 7);
        Executor::new(13).fill(&mut b, |i| i as u32 * 7);
        assert_eq!(a, b);
    }

    #[test]
    fn map_collect_equals_sequential_map() {
        let ex = Executor::new(4);
        let got = ex.map_collect(100, |i| i * i);
        let want: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn run_tasks_hands_each_job_to_exactly_one_worker() {
        let ex = Executor::new(4);
        let jobs: Vec<u64> = (0..100).collect();
        let sum = AtomicU64::new(0);
        ex.run_tasks(jobs, |i, job| {
            assert_eq!(i as u64, job);
            sum.fetch_add(job, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn launches_reuse_the_pool_instead_of_spawning() {
        let ex = Executor::new(6);
        let spawned_at_creation = ex.threads_spawned();
        assert_eq!(spawned_at_creation, 5);
        for _ in 0..50 {
            ex.for_each_index(512, |_| {});
        }
        assert_eq!(ex.threads_spawned(), spawned_at_creation);
        assert_eq!(ex.pool_dispatches(), 50);
    }

    #[test]
    fn clones_share_one_pool() {
        let ex = Executor::new(4);
        let clone = ex.clone();
        clone.for_each_index(100, |_| {});
        assert_eq!(ex.pool_dispatches(), 1);
        assert_eq!(ex.threads_spawned(), 3);
    }

    #[test]
    fn scatter_by_offsets_writes_disjoint_variable_length_ranges() {
        let ex = Executor::new(4);
        // item i produces i % 3 outputs, each equal to i.
        let n = 500;
        let counts: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut out = vec![usize::MAX; offsets[n]];
        ex.scatter_by_offsets(&mut out, &offsets, |i, slots| {
            for s in slots.iter_mut() {
                *s = i;
            }
        });
        for i in 0..n {
            for slot in &out[offsets[i]..offsets[i + 1]] {
                assert_eq!(*slot, i);
            }
        }
    }

    #[test]
    fn scatter_with_zero_items_is_a_no_op() {
        let ex = Executor::new(4);
        let mut out: Vec<u32> = Vec::new();
        ex.scatter_by_offsets(&mut out, &[0usize], |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "offsets must cover the output exactly")]
    fn scatter_panics_on_mismatched_offsets() {
        let ex = Executor::new(2);
        let mut out = vec![0u32; 5];
        ex.scatter_by_offsets(&mut out, &[0, 2, 3], |_, _| {});
    }

    #[test]
    fn empty_work_is_a_no_op() {
        let ex = Executor::new(4);
        ex.for_each_index(0, |_| panic!("must not be called"));
        let mut out: Vec<u32> = Vec::new();
        ex.fill(&mut out, |_| panic!("must not be called"));
    }

    #[test]
    fn default_launch_config_is_sane() {
        let cfg = LaunchConfig::default();
        assert!(cfg.workers >= 1);
        assert_eq!(cfg.warp_size, 32);
        assert_eq!(cfg.block_size, 256);
    }
}
