//! Device profiles describing the hardware the paper evaluated on.
//!
//! A [`DeviceProfile`] captures the handful of architectural parameters that
//! the paper itself identifies as performance-determining for Datalog
//! workloads (Section 6.6): memory capacity, memory bandwidth, the number of
//! streaming multiprocessors (or CPU cores), lanes per SM, and clock rate.
//! The analytic cost model in [`crate::cost`] converts the byte and
//! operation counts recorded by [`crate::metrics::Metrics`] into modeled
//! device time using these parameters, which is how the cross-hardware
//! tables (Table 5 and Table 6) are regenerated without the physical GPUs.

use serde::{Deserialize, Serialize};

/// The broad class of a device, used by the cost model to pick efficiency
/// constants (GPUs sustain a larger fraction of peak bandwidth on streaming
/// kernels than CPUs do on pointer-heavy ones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A discrete data-center GPU (H100, A100, MI250, MI50, ...).
    Gpu,
    /// A multicore server CPU (EPYC Milan / Rome, Xeon, ...).
    Cpu,
}

/// Architectural description of a device.
///
/// # Examples
///
/// ```
/// use gpulog_device::profile::DeviceProfile;
///
/// let h100 = DeviceProfile::nvidia_h100();
/// let milan = DeviceProfile::amd_epyc_7543p();
/// assert!(h100.memory_bandwidth_bytes_per_sec > 10.0 * milan.memory_bandwidth_bytes_per_sec);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Marketing / reporting name, e.g. `"NVIDIA H100"`.
    pub name: String,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// Device memory (VRAM or socket-local DRAM) capacity in bytes.
    pub memory_capacity_bytes: usize,
    /// Peak memory bandwidth in bytes per second.
    pub memory_bandwidth_bytes_per_sec: f64,
    /// Streaming multiprocessors (GPU) or physical cores (CPU).
    pub sm_count: u32,
    /// SIMT lanes per SM (GPU) or SIMD lanes per core (CPU).
    pub lanes_per_sm: u32,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// Fixed overhead charged per kernel launch, in seconds.
    pub kernel_launch_overhead_sec: f64,
    /// Fixed overhead charged per *non-pooled* device allocation, in
    /// seconds (a `cudaMalloc`/`cudaFree` pair plus first-touch); pooled
    /// (recycled) allocations are free. This is the term eager buffer
    /// management amortizes away (paper Section 5.3, Table 1).
    pub allocation_overhead_sec: f64,
    /// Throughput at which fresh (non-pooled) allocations are served and
    /// first-touched, in bytes per second. Pooled allocations bypass this.
    pub allocation_bandwidth_bytes_per_sec: f64,
    /// Fraction of peak bandwidth sustained on the streaming access patterns
    /// GPUlog generates (coalesced strided reads, bulk sorts and merges).
    pub sustained_bandwidth_fraction: f64,
}

impl DeviceProfile {
    /// Total number of hardware lanes (SMs x lanes per SM).
    pub fn total_lanes(&self) -> u64 {
        u64::from(self.sm_count) * u64::from(self.lanes_per_sm)
    }

    /// Effective (sustained) bandwidth in bytes per second.
    pub fn effective_bandwidth(&self) -> f64 {
        self.memory_bandwidth_bytes_per_sec * self.sustained_bandwidth_fraction
    }

    /// Peak simple-operation throughput in operations per second.
    pub fn compute_throughput_ops_per_sec(&self) -> f64 {
        self.total_lanes() as f64 * self.clock_ghz * 1e9
    }

    /// NVIDIA H100 80GB (SXM): 114 SMs x 128 FP32 lanes, ~3.35 TB/s HBM3.
    pub fn nvidia_h100() -> Self {
        DeviceProfile {
            name: "NVIDIA H100".to_string(),
            kind: DeviceKind::Gpu,
            memory_capacity_bytes: 80 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 3.35e12,
            sm_count: 114,
            lanes_per_sm: 128,
            clock_ghz: 1.76,
            kernel_launch_overhead_sec: 4.0e-6,
            allocation_overhead_sec: 6.0e-6,
            allocation_bandwidth_bytes_per_sec: 3.0e11,
            sustained_bandwidth_fraction: 0.62,
        }
    }

    /// NVIDIA A100 80GB: 108 SMs x 64 FP32 lanes, ~1.5-2.0 TB/s HBM2e.
    pub fn nvidia_a100() -> Self {
        DeviceProfile {
            name: "NVIDIA A100".to_string(),
            kind: DeviceKind::Gpu,
            memory_capacity_bytes: 80 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 1.55e12,
            sm_count: 108,
            lanes_per_sm: 64,
            clock_ghz: 1.41,
            kernel_launch_overhead_sec: 4.5e-6,
            allocation_overhead_sec: 7.0e-6,
            allocation_bandwidth_bytes_per_sec: 2.5e11,
            sustained_bandwidth_fraction: 0.62,
        }
    }

    /// AMD Instinct MI250 (one GCD usable by the single-GPU engine, per the
    /// paper's Section 6.6 discussion of the dual-chiplet design): 104 CUs,
    /// half addressable, ~1.6 TB/s per card shared across chiplets, and no
    /// RMM-style pooled allocator in the HIP backend.
    pub fn amd_mi250() -> Self {
        DeviceProfile {
            name: "AMD MI250".to_string(),
            kind: DeviceKind::Gpu,
            memory_capacity_bytes: 64 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 1.6e12 / 2.0,
            sm_count: 52,
            lanes_per_sm: 64,
            clock_ghz: 1.7,
            kernel_launch_overhead_sec: 7.0e-6,
            allocation_overhead_sec: 3.0e-5,
            allocation_bandwidth_bytes_per_sec: 1.2e11,
            sustained_bandwidth_fraction: 0.48,
        }
    }

    /// AMD Instinct MI50: 60 CUs, ~1.0 TB/s HBM2, smaller 32 GB memory.
    pub fn amd_mi50() -> Self {
        DeviceProfile {
            name: "AMD MI50".to_string(),
            kind: DeviceKind::Gpu,
            memory_capacity_bytes: 32 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 1.02e12 / 2.0,
            sm_count: 30,
            lanes_per_sm: 64,
            clock_ghz: 1.45,
            kernel_launch_overhead_sec: 8.0e-6,
            allocation_overhead_sec: 3.0e-5,
            allocation_bandwidth_bytes_per_sec: 1.0e11,
            sustained_bandwidth_fraction: 0.42,
        }
    }

    /// AMD EPYC 7543P (Zen 3, 32 cores) — the paper's Souffle host.
    pub fn amd_epyc_7543p() -> Self {
        DeviceProfile {
            name: "AMD EPYC 7543P".to_string(),
            kind: DeviceKind::Cpu,
            memory_capacity_bytes: 512 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 1.9e11,
            sm_count: 32,
            lanes_per_sm: 8,
            clock_ghz: 2.8,
            kernel_launch_overhead_sec: 5.0e-7,
            allocation_overhead_sec: 1.0e-6,
            allocation_bandwidth_bytes_per_sec: 6.0e10,
            sustained_bandwidth_fraction: 0.55,
        }
    }

    /// AMD EPYC 7713 (Zen 3, 64 cores) — the paper's GPU host CPU.
    pub fn amd_epyc_7713() -> Self {
        DeviceProfile {
            name: "AMD EPYC 7713".to_string(),
            kind: DeviceKind::Cpu,
            memory_capacity_bytes: 512 * (1 << 30),
            memory_bandwidth_bytes_per_sec: 2.0e11,
            sm_count: 64,
            lanes_per_sm: 8,
            clock_ghz: 2.0,
            kernel_launch_overhead_sec: 5.0e-7,
            allocation_overhead_sec: 1.0e-6,
            allocation_bandwidth_bytes_per_sec: 6.0e10,
            sustained_bandwidth_fraction: 0.55,
        }
    }

    /// A deliberately tiny test device (a few megabytes of "VRAM") used by
    /// unit tests that exercise out-of-memory behaviour quickly.
    pub fn tiny_test_device(capacity_bytes: usize) -> Self {
        DeviceProfile {
            name: "tiny-test-device".to_string(),
            kind: DeviceKind::Gpu,
            memory_capacity_bytes: capacity_bytes,
            memory_bandwidth_bytes_per_sec: 1.0e11,
            sm_count: 4,
            lanes_per_sm: 32,
            clock_ghz: 1.0,
            kernel_launch_overhead_sec: 1.0e-6,
            allocation_overhead_sec: 1.0e-6,
            allocation_bandwidth_bytes_per_sec: 1.0e11,
            sustained_bandwidth_fraction: 0.5,
        }
    }

    /// All data-center GPU profiles evaluated in the paper's Table 5, in the
    /// order the table lists them.
    pub fn paper_gpus() -> Vec<DeviceProfile> {
        vec![
            Self::nvidia_h100(),
            Self::nvidia_a100(),
            Self::amd_mi250(),
            Self::amd_mi50(),
        ]
    }
}

impl Default for DeviceProfile {
    /// The default profile is the paper's headline device, the NVIDIA H100.
    fn default() -> Self {
        Self::nvidia_h100()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn h100_has_highest_bandwidth_of_paper_gpus() {
        let gpus = DeviceProfile::paper_gpus();
        let h100 = &gpus[0];
        for other in &gpus[1..] {
            assert!(
                h100.memory_bandwidth_bytes_per_sec > other.memory_bandwidth_bytes_per_sec,
                "H100 should have more bandwidth than {}",
                other.name
            );
        }
    }

    #[test]
    fn gpu_cpu_bandwidth_gap_matches_paper_order_of_magnitude() {
        // The paper quotes 3.35 TB/s (H100) vs ~190 GB/s (Milan): ~17x.
        let ratio = DeviceProfile::nvidia_h100().memory_bandwidth_bytes_per_sec
            / DeviceProfile::amd_epyc_7543p().memory_bandwidth_bytes_per_sec;
        assert!(ratio > 10.0 && ratio < 30.0, "ratio was {ratio}");
    }

    #[test]
    fn total_lanes_and_throughput_are_consistent() {
        let a100 = DeviceProfile::nvidia_a100();
        assert_eq!(a100.total_lanes(), 108 * 64);
        assert!(a100.compute_throughput_ops_per_sec() > 1e12);
    }

    #[test]
    fn paper_gpu_ordering_is_h100_a100_mi250_mi50() {
        let names: Vec<String> = DeviceProfile::paper_gpus()
            .into_iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["NVIDIA H100", "NVIDIA A100", "AMD MI250", "AMD MI50"]
        );
    }

    #[test]
    fn default_is_h100() {
        assert_eq!(DeviceProfile::default().name, "NVIDIA H100");
    }

    #[test]
    fn tiny_device_capacity_respected() {
        let d = DeviceProfile::tiny_test_device(1024);
        assert_eq!(d.memory_capacity_bytes, 1024);
    }

    #[test]
    fn effective_bandwidth_below_peak() {
        for p in DeviceProfile::paper_gpus() {
            assert!(p.effective_bandwidth() < p.memory_bandwidth_bytes_per_sec);
            assert!(p.effective_bandwidth() > 0.0);
        }
    }
}
