//! Device memory accounting and the pooled recycle bin.
//!
//! Two concerns live here:
//!
//! * [`MemoryTracker`] enforces the device's VRAM capacity and keeps the
//!   in-use / peak counters. Exceeding capacity yields
//!   [`DeviceError::OutOfMemory`], which is how the `OOM` rows of the
//!   paper's Tables 2 and 3 are reproduced.
//! * [`RecycleBin`] is the RMM-style pooled allocator: freed tuple buffers
//!   are kept and handed back to later allocations of compatible size
//!   instead of being returned to the system. Eager Buffer Management
//!   (paper Section 5.3) builds on this reuse path.

use crate::error::{DeviceError, DeviceResult};
use crate::metrics::Metrics;
use std::sync::{Arc, Mutex};

/// Tracks device-memory consumption against a fixed capacity.
#[derive(Debug)]
pub struct MemoryTracker {
    capacity: usize,
    metrics: Arc<Metrics>,
}

impl MemoryTracker {
    /// Creates a tracker with the given capacity, reporting into `metrics`.
    pub fn new(capacity: usize, metrics: Arc<Metrics>) -> Self {
        MemoryTracker { capacity, metrics }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> usize {
        self.metrics.bytes_in_use()
    }

    /// Peak bytes allocated over the device's lifetime.
    pub fn peak(&self) -> usize {
        self.metrics.peak_bytes_in_use()
    }

    /// Registers an allocation of `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::OutOfMemory`] when the allocation would exceed
    /// the device capacity; the allocation is not recorded in that case.
    pub fn allocate(&self, bytes: usize, reused: bool) -> DeviceResult<()> {
        let in_use = self.metrics.bytes_in_use();
        if in_use.saturating_add(bytes) > self.capacity {
            return Err(DeviceError::OutOfMemory {
                requested: bytes,
                in_use,
                capacity: self.capacity,
            });
        }
        self.metrics.record_alloc(bytes, reused);
        Ok(())
    }

    /// Registers that `bytes` were released.
    pub fn free(&self, bytes: usize) {
        self.metrics.record_free(bytes);
    }
}

/// A pooled recycle bin for `u32` tuple buffers.
///
/// All relation payloads in GPUlog are arrays of 32-bit column values, so a
/// single-element-type pool covers the allocations that dominate the
/// engine's memory traffic (data arrays, sorted index arrays, join outputs).
#[derive(Debug, Default)]
pub struct RecycleBin {
    free: Mutex<Vec<Vec<u32>>>,
    max_retained: usize,
}

impl RecycleBin {
    /// Creates a bin retaining at most `max_retained` freed buffers.
    pub fn new(max_retained: usize) -> Self {
        RecycleBin {
            free: Mutex::new(Vec::new()),
            max_retained,
        }
    }

    /// Takes a retained buffer whose capacity is at least `min_capacity`,
    /// if one is available. The returned buffer has length zero.
    pub fn take(&self, min_capacity: usize) -> Option<Vec<u32>> {
        let mut free = self.free.lock().expect("recycle bin lock poisoned");
        // Pick the smallest retained buffer that is large enough, to keep
        // big buffers available for big requests.
        let mut best: Option<(usize, usize)> = None;
        for (idx, buf) in free.iter().enumerate() {
            if buf.capacity() >= min_capacity {
                match best {
                    Some((_, cap)) if cap <= buf.capacity() => {}
                    _ => best = Some((idx, buf.capacity())),
                }
            }
        }
        best.map(|(idx, _)| {
            let mut buf = free.swap_remove(idx);
            buf.clear();
            buf
        })
    }

    /// Returns a buffer to the bin. If the bin is full the smallest retained
    /// buffer is evicted so the bin prefers keeping large buffers around.
    pub fn put(&self, buf: Vec<u32>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().expect("recycle bin lock poisoned");
        free.push(buf);
        if free.len() > self.max_retained {
            if let Some((smallest, _)) = free
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .min_by_key(|&(_, cap)| cap)
            {
                free.swap_remove(smallest);
            }
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.lock().expect("recycle bin lock poisoned").len()
    }

    /// Total capacity (in elements) currently retained.
    pub fn retained_capacity(&self) -> usize {
        self.free
            .lock()
            .expect("recycle bin lock poisoned")
            .iter()
            .map(|b| b.capacity())
            .sum()
    }

    /// Drops every retained buffer.
    pub fn clear(&self) {
        self.free.lock().expect("recycle bin lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(capacity: usize) -> MemoryTracker {
        MemoryTracker::new(capacity, Arc::new(Metrics::new()))
    }

    #[test]
    fn allocate_within_capacity_succeeds() {
        let t = tracker(1000);
        t.allocate(400, false).unwrap();
        t.allocate(600, false).unwrap();
        assert_eq!(t.in_use(), 1000);
        assert_eq!(t.peak(), 1000);
    }

    #[test]
    fn allocate_beyond_capacity_is_oom_and_not_recorded() {
        let t = tracker(1000);
        t.allocate(800, false).unwrap();
        let err = t.allocate(300, false).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => {
                assert_eq!(requested, 300);
                assert_eq!(in_use, 800);
                assert_eq!(capacity, 1000);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
        assert_eq!(t.in_use(), 800);
    }

    #[test]
    fn free_releases_capacity_for_later_allocations() {
        let t = tracker(1000);
        t.allocate(900, false).unwrap();
        t.free(900);
        t.allocate(1000, false).unwrap();
        assert_eq!(t.peak(), 1000);
    }

    #[test]
    fn recycle_bin_round_trip() {
        let bin = RecycleBin::new(4);
        assert!(bin.take(1).is_none());
        bin.put(Vec::with_capacity(128));
        bin.put(Vec::with_capacity(16));
        assert_eq!(bin.retained(), 2);
        // A request for 64 elements should get the 128-capacity buffer.
        let got = bin.take(64).unwrap();
        assert!(got.capacity() >= 128);
        assert!(got.is_empty());
        assert_eq!(bin.retained(), 1);
    }

    #[test]
    fn recycle_bin_prefers_smallest_sufficient_buffer() {
        let bin = RecycleBin::new(4);
        bin.put(Vec::with_capacity(1024));
        bin.put(Vec::with_capacity(64));
        let got = bin.take(32).unwrap();
        assert!(got.capacity() < 1024, "should not burn the big buffer");
    }

    #[test]
    fn recycle_bin_evicts_smallest_when_full() {
        let bin = RecycleBin::new(2);
        bin.put(Vec::with_capacity(10));
        bin.put(Vec::with_capacity(20));
        bin.put(Vec::with_capacity(30));
        assert_eq!(bin.retained(), 2);
        assert!(
            bin.take(25).is_some(),
            "the 30-capacity buffer must survive"
        );
    }

    #[test]
    fn recycle_bin_ignores_empty_buffers() {
        let bin = RecycleBin::new(2);
        bin.put(Vec::new());
        assert_eq!(bin.retained(), 0);
    }
}
