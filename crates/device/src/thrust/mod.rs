//! Thrust-like data-parallel primitives.
//!
//! GPUlog (the paper, Section 4.2) builds HISA "extensively using NVIDIA's
//! Thrust library to perform tasks such as copying, gathering, and sorting",
//! plus the merge-path merge of Green et al. This module provides the same
//! primitive vocabulary on the simulated device so the data-structure and
//! engine code above it can follow the paper's algorithms line by line:
//!
//! * [`sort`] — parallel stable sorts, including the column-at-a-time LSD
//!   sort HISA uses to build its sorted index array (Algorithm 1).
//! * [`merge`] — the merge-path parallel merge used when folding a delta
//!   relation into the full relation.
//! * [`scan`] — exclusive/inclusive prefix sums, the backbone of two-pass
//!   (count, scan, write) output materialization.
//! * [`transform`] — gather, compaction (`copy_if`), and adjacent-difference
//!   style helpers used for deduplication.
//! * [`reduce`] — sums, counts, and extrema.

pub mod merge;
pub mod reduce;
pub mod scan;
pub mod sort;
pub mod transform;
