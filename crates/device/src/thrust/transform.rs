//! Gather, compaction, and adjacent-difference style primitives.

use crate::device::Device;
use crate::thrust::scan::exclusive_scan_offsets;

/// Gathers whole rows of a row-major tuple store: output row `i` is input
/// row `indices[i]`.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity` or any index is out
/// of range.
pub fn gather_rows(device: &Device, data: &[u32], arity: usize, indices: &[u32]) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    let rows = data.len() / arity;
    assert!(
        indices.iter().all(|&i| (i as usize) < rows),
        "gather index out of range"
    );
    device.metrics().add_kernel_launch();
    device
        .metrics()
        .add_bytes_read((indices.len() * arity * 4 + indices.len() * 4) as u64);
    device
        .metrics()
        .add_bytes_written((indices.len() * arity * 4) as u64);
    let mut out = vec![0u32; indices.len() * arity];
    device.executor().fill(&mut out, |slot| {
        let row = indices[slot / arity] as usize;
        data[row * arity + slot % arity]
    });
    out
}

/// Inverts a permutation into a caller-provided buffer: `out[perm[q]] = q`.
/// Every destination appears exactly once (it is a permutation), so the
/// scatter is data-race-free; on a multi-worker device large inputs scatter
/// in parallel through relaxed atomic cells and are copied back with a
/// partitioned fill, while small inputs (or a single-worker pool) take one
/// sequential stream. Memory-bound exactly like the index merge that
/// produces `perm`.
///
/// # Panics
///
/// Panics if the lengths differ or any entry is out of range (the latter
/// only under `debug_assertions`).
pub fn invert_permutation_into(device: &Device, perm: &[u32], out: &mut [u32]) {
    use std::sync::atomic::{AtomicU32, Ordering};
    // Below this size the scratch allocation and extra pass of the
    // parallel path cost more than they save.
    const PARALLEL_CUTOFF: usize = 1 << 14;
    assert_eq!(perm.len(), out.len(), "permutation/inverse length mismatch");
    let n = perm.len();
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read(n as u64 * 4);
    device.metrics().add_bytes_written(n as u64 * 4);
    let executor = device.executor();
    if executor.workers() > 1 && n >= PARALLEL_CUTOFF {
        let scratch: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let scratch_ref = &scratch;
        executor.for_each_partition(n, |_, range| {
            for q in range {
                let r = perm[q] as usize;
                debug_assert!(r < n, "permutation entry out of range");
                scratch_ref[r].store(q as u32, Ordering::Relaxed);
            }
        });
        executor.fill(out, |i| scratch[i].load(Ordering::Relaxed));
    } else {
        for (q, &r) in perm.iter().enumerate() {
            debug_assert!((r as usize) < out.len(), "permutation entry out of range");
            out[r as usize] = q as u32;
        }
    }
}

/// [`invert_permutation_into`] with a freshly allocated output.
pub fn invert_permutation(device: &Device, perm: &[u32]) -> Vec<u32> {
    let mut out = vec![0u32; perm.len()];
    invert_permutation_into(device, perm, &mut out);
    out
}

/// Parallel compaction (`copy_if`): keeps element `i` when `keep(i)` is true,
/// preserving order. Returns the kept indices.
pub fn compact_indices<F>(device: &Device, n: usize, keep: F) -> Vec<u32>
where
    F: Fn(usize) -> bool + Sync,
{
    device.metrics().add_kernel_launch();
    device.metrics().add_ops(n as u64);
    let flags: Vec<usize> = device.executor().map_collect(n, |i| usize::from(keep(i)));
    let offsets = exclusive_scan_offsets(device, &flags);
    let total = offsets[n];
    device.metrics().add_bytes_written(total as u64 * 4);
    let mut out = vec![0u32; total];
    device
        .executor()
        .scatter_by_offsets(&mut out, &offsets, |i, slots| {
            if let Some(slot) = slots.first_mut() {
                *slot = i as u32;
            }
        });
    out
}

/// Marks, for each position of a sorted index array, whether the referenced
/// row differs from the previous referenced row — the adjacent-comparison
/// pass HISA uses for deduplication. Position 0 is always marked unique.
///
/// `sorted_indices[i]` indexes a row of the row-major `data` store.
pub fn adjacent_unique_flags(
    device: &Device,
    data: &[u32],
    arity: usize,
    sorted_indices: &[u32],
) -> Vec<bool> {
    assert!(arity > 0, "arity must be positive");
    let n = sorted_indices.len();
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read((n * arity * 4 * 2) as u64);
    device.metrics().add_ops((n * arity) as u64);
    let mut flags = vec![false; n];
    device.executor().fill(&mut flags, |i| {
        if i == 0 {
            return true;
        }
        let cur = sorted_indices[i] as usize * arity;
        let prev = sorted_indices[i - 1] as usize * arity;
        data[cur..cur + arity] != data[prev..prev + arity]
    });
    flags
}

/// Element-wise transform producing a new vector (`thrust::transform`).
pub fn transform_map<T, U, F>(device: &Device, input: &[T], f: F) -> Vec<U>
where
    T: Copy + Send + Sync,
    U: Copy + Send + Sync + Default,
    F: Fn(T) -> U + Sync,
{
    device.metrics().add_kernel_launch();
    device
        .metrics()
        .add_bytes_read(std::mem::size_of_val(input) as u64);
    device
        .metrics()
        .add_bytes_written((input.len() * std::mem::size_of::<U>()) as u64);
    device.metrics().add_ops(input.len() as u64);
    let mut out = vec![U::default(); input.len()];
    device.executor().fill(&mut out, |i| f(input[i]));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn gather_rows_picks_whole_tuples() {
        let d = device();
        let data = vec![1u32, 2, 3, 4, 5, 6, 7, 8, 9]; // 3 rows of arity 3
        let out = gather_rows(&d, &data, 3, &[2, 0]);
        assert_eq!(out, vec![7, 8, 9, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_bad_index() {
        gather_rows(&device(), &[1, 2], 2, &[5]);
    }

    #[test]
    fn compact_keeps_matching_indices_in_order() {
        let d = device();
        let out = compact_indices(&d, 10, |i| i % 3 == 0);
        assert_eq!(out, vec![0, 3, 6, 9]);
    }

    #[test]
    fn compact_with_nothing_kept_is_empty() {
        let d = device();
        assert!(compact_indices(&d, 100, |_| false).is_empty());
    }

    #[test]
    fn compact_with_everything_kept_is_identity() {
        let d = device();
        let out = compact_indices(&d, 17, |_| true);
        assert_eq!(out, (0..17u32).collect::<Vec<_>>());
    }

    #[test]
    fn adjacent_unique_flags_detect_duplicates() {
        let d = device();
        // rows: (1,2) (1,2) (3,4) (3,4) (3,5)
        let data = vec![1u32, 2, 1, 2, 3, 4, 3, 4, 3, 5];
        let sorted = vec![0u32, 1, 2, 3, 4];
        let flags = adjacent_unique_flags(&d, &data, 2, &sorted);
        assert_eq!(flags, vec![true, false, true, false, true]);
    }

    #[test]
    fn adjacent_unique_flags_follow_index_order_not_storage_order() {
        let d = device();
        // rows: (5,5) (1,1) (5,5) — sorted order [1, 0, 2] puts the
        // duplicates adjacent.
        let data = vec![5u32, 5, 1, 1, 5, 5];
        let flags = adjacent_unique_flags(&d, &data, 2, &[1, 0, 2]);
        assert_eq!(flags, vec![true, true, false]);
    }

    #[test]
    fn transform_map_applies_function() {
        let d = device();
        let out: Vec<u64> = transform_map(&d, &[1u32, 2, 3], |x| u64::from(x) * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }
}
