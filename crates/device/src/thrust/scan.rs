//! Parallel prefix sums.

use crate::device::Device;

/// Exclusive prefix sum returning `n + 1` offsets.
///
/// `result[i]` is the sum of `values[..i]`; `result[n]` is the total. This
/// is the offsets layout consumed by
/// [`crate::executor::Executor::scatter_by_offsets`] and by every two-pass
/// output-materialization kernel in the engine.
pub fn exclusive_scan_offsets(device: &Device, values: &[usize]) -> Vec<usize> {
    let n = values.len();
    let mut offsets = vec![0usize; n + 1];
    if n == 0 {
        return offsets;
    }
    device.metrics().add_kernel_launch();
    device
        .metrics()
        .add_bytes_read(std::mem::size_of_val(values) as u64);
    device
        .metrics()
        .add_bytes_written(((n + 1) * std::mem::size_of::<usize>()) as u64);
    device.metrics().add_ops(n as u64);

    let executor = device.executor();
    let parts = executor.partitions(n);
    // Pass 1: per-partition sums.
    let mut partial: Vec<usize> = vec![0; parts.len()];
    {
        let parts_ref = &parts;
        executor.fill(&mut partial, |p| {
            parts_ref[p].clone().map(|i| values[i]).sum()
        });
    }
    // Sequential scan over the (few) partition sums.
    let mut bases = vec![0usize; parts.len() + 1];
    for (i, s) in partial.iter().enumerate() {
        bases[i + 1] = bases[i] + s;
    }
    // Pass 2: per-partition exclusive scans shifted by the base.
    let offsets_cell: Vec<std::sync::atomic::AtomicUsize> = (0..=n)
        .map(|_| std::sync::atomic::AtomicUsize::new(0))
        .collect();
    {
        let parts_ref = &parts;
        let bases_ref = &bases;
        let offsets_ref = &offsets_cell;
        executor.for_each_partition(n, |p, _| {
            let range = parts_ref[p].clone();
            let mut acc = bases_ref[p];
            for i in range {
                offsets_ref[i].store(acc, std::sync::atomic::Ordering::Relaxed);
                acc += values[i];
            }
        });
    }
    for (i, slot) in offsets_cell.iter().enumerate().take(n) {
        offsets[i] = slot.load(std::sync::atomic::Ordering::Relaxed);
    }
    offsets[n] = bases[parts.len()];
    offsets
}

/// Inclusive prefix sum: `result[i]` is the sum of `values[..=i]`.
pub fn inclusive_scan(device: &Device, values: &[usize]) -> Vec<usize> {
    let offsets = exclusive_scan_offsets(device, values);
    (0..values.len()).map(|i| offsets[i] + values[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    fn reference_exclusive(values: &[usize]) -> Vec<usize> {
        let mut out = vec![0usize; values.len() + 1];
        for i in 0..values.len() {
            out[i + 1] = out[i] + values[i];
        }
        out
    }

    #[test]
    fn empty_input_yields_single_zero() {
        assert_eq!(exclusive_scan_offsets(&device(), &[]), vec![0]);
    }

    #[test]
    fn matches_sequential_reference() {
        let d = device();
        for n in [1usize, 2, 5, 63, 64, 65, 1000] {
            let values: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % 11).collect();
            assert_eq!(
                exclusive_scan_offsets(&d, &values),
                reference_exclusive(&values),
                "n = {n}"
            );
        }
    }

    #[test]
    fn total_is_last_offset() {
        let d = device();
        let values = vec![4usize, 0, 9, 2];
        let offsets = exclusive_scan_offsets(&d, &values);
        assert_eq!(*offsets.last().unwrap(), 15);
    }

    #[test]
    fn inclusive_scan_matches_reference() {
        let d = device();
        let values = vec![1usize, 2, 3, 4, 5];
        assert_eq!(inclusive_scan(&d, &values), vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_records_a_kernel_launch() {
        let d = device();
        let before = d.metrics().snapshot().kernel_launches;
        exclusive_scan_offsets(&d, &[1, 2, 3]);
        assert!(d.metrics().snapshot().kernel_launches > before);
    }
}
