//! Parallel stable sorts.
//!
//! HISA builds its sorted index array with a sequence of *stable* sorts, one
//! per tuple column, from the least-significant (rightmost) column to the
//! most-significant (paper Algorithm 1) — a radix sort whose digits are
//! whole columns. [`lexicographic_sort_indices`] implements exactly that:
//! each column is itself sorted with a stable LSD counting sort over 8-bit
//! digits (per-worker histograms, an exclusive scan over the combined
//! counts, and a stable scatter — the classic GPU radix-sort schedule),
//! so the whole build is comparison-free. The generic comparison-based
//! [`stable_sort_by`] remains for arbitrary element types and as the
//! reference the radix path is property-tested against.

use crate::device::Device;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// Parallel, stable, comparison-based sort.
///
/// Items are split into one run per worker, each run is sorted with the
/// standard library's stable sort, and runs are then merged pairwise (each
/// merge handled by one worker) until a single run remains — the classic
/// parallel merge-sort schedule. All parallel phases execute on the
/// device's persistent worker pool.
pub fn stable_sort_by<T, F>(device: &Device, items: &mut Vec<T>, compare: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let elem = std::mem::size_of::<T>() as u64;
    device.metrics().add_kernel_launch();
    let executor = device.executor();
    let parts = executor.partitions(n);

    // Sort each partition independently.
    {
        let mut jobs: Vec<&mut [T]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [T] = items.as_mut_slice();
        for range in &parts {
            let (head, tail) = rest.split_at_mut(range.len());
            jobs.push(head);
            rest = tail;
        }
        let compare = &compare;
        executor.run_tasks(jobs, |_, job| job.sort_by(compare));
    }
    let passes = (parts.len().max(2) as f64).log2().ceil() as u64 + 1;
    device.metrics().add_bytes_read(n as u64 * elem * passes);
    device.metrics().add_bytes_written(n as u64 * elem * passes);
    device
        .metrics()
        .add_ops(n as u64 * (n.max(2) as f64).log2().ceil() as u64);

    // Merge runs pairwise until one remains.
    let mut run_bounds: Vec<usize> = parts.iter().map(|r| r.start).collect();
    run_bounds.push(n);
    let mut source = items.clone();
    let mut target: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free approach: use a second owned buffer and swap.
    target.extend_from_slice(&source);
    while run_bounds.len() > 2 {
        let mut new_bounds = Vec::with_capacity(run_bounds.len() / 2 + 2);
        let pair_count = (run_bounds.len() - 1) / 2;
        // Describe each merge job: (a_range, b_range, out_start).
        let mut jobs = Vec::with_capacity(pair_count + 1);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            jobs.push((
                run_bounds[i]..run_bounds[i + 1],
                run_bounds[i + 1]..run_bounds[i + 2],
            ));
            i += 2;
        }
        let leftover = if i + 1 < run_bounds.len() {
            Some(run_bounds[i]..run_bounds[i + 1])
        } else {
            None
        };
        // Split the target buffer into one output slice per job.
        {
            let mut merge_jobs: Vec<(std::ops::Range<usize>, std::ops::Range<usize>, &mut [T])> =
                Vec::with_capacity(jobs.len());
            let mut rest: &mut [T] = target.as_mut_slice();
            let mut cursor = 0usize;
            for (a, b) in &jobs {
                let start = a.start;
                let len = (a.end - a.start) + (b.end - b.start);
                let (_, tail) = rest.split_at_mut(start - cursor);
                let (mine, tail) = tail.split_at_mut(len);
                merge_jobs.push((a.clone(), b.clone(), mine));
                rest = tail;
                cursor = start + len;
            }
            let source_ref = &source;
            let compare = &compare;
            executor.run_tasks(merge_jobs, |_, (a, b, out)| {
                let (mut ai, mut bi, mut oi) = (a.start, b.start, 0usize);
                while ai < a.end && bi < b.end {
                    if compare(&source_ref[bi], &source_ref[ai]) == Ordering::Less {
                        out[oi] = source_ref[bi];
                        bi += 1;
                    } else {
                        out[oi] = source_ref[ai];
                        ai += 1;
                    }
                    oi += 1;
                }
                while ai < a.end {
                    out[oi] = source_ref[ai];
                    ai += 1;
                    oi += 1;
                }
                while bi < b.end {
                    out[oi] = source_ref[bi];
                    bi += 1;
                    oi += 1;
                }
            });
        }
        // Copy any leftover run through unchanged.
        if let Some(range) = leftover.clone() {
            target[range.clone()].copy_from_slice(&source[range]);
        }
        // Rebuild run bounds.
        new_bounds.push(0);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            new_bounds.push(run_bounds[i + 2]);
            i += 2;
        }
        if leftover.is_some() {
            new_bounds.push(n);
        }
        run_bounds = new_bounds;
        std::mem::swap(&mut source, &mut target);
    }
    items.copy_from_slice(&source);
}

/// Stable sort of `indices` by a key derived from each index.
pub fn stable_sort_indices_by_key<K, F>(device: &Device, indices: &mut Vec<u32>, key: F)
where
    K: Ord,
    F: Fn(u32) -> K + Sync,
{
    stable_sort_by(device, indices, |a, b| key(*a).cmp(&key(*b)));
}

/// Number of 8-bit digit positions needed to cover `max_value`.
fn radix_passes_for(max_value: u32) -> usize {
    if max_value == 0 {
        0
    } else {
        (32 - max_value.leading_zeros() as usize).div_ceil(8)
    }
}

/// One stable counting-sort pass over an 8-bit digit of one column.
///
/// `input` and `output` hold row indices; rows are ranked by
/// `(data[row * arity + col] >> shift) & 0xff`. Histograms are built per
/// worker partition, combined with an exclusive scan into per-partition,
/// per-digit start offsets, and scattered back in partition order — which
/// is what makes the pass stable.
fn counting_sort_pass(
    device: &Device,
    data: &[u32],
    arity: usize,
    col: usize,
    shift: u32,
    input: &[AtomicU32],
    output: &[AtomicU32],
) {
    const RADIX: usize = 256;
    let n = input.len();
    let executor = device.executor();
    let parts = executor.partitions(n);
    let digit_of = |slot: &AtomicU32| {
        let row = slot.load(AtomicOrdering::Relaxed) as usize;
        ((data[row * arity + col] >> shift) & 0xff) as usize
    };
    // Pass 1: per-partition digit histograms.
    let parts_ref = &parts;
    let histograms: Vec<Vec<u32>> = executor.map_collect(parts.len(), |p| {
        let mut hist = vec![0u32; RADIX];
        for slot in &input[parts_ref[p].clone()] {
            hist[digit_of(slot)] += 1;
        }
        hist
    });
    // Exclusive scan over (digit, partition): all smaller digits first,
    // then earlier partitions of the same digit.
    let mut starts = vec![0u32; parts.len() * RADIX];
    let mut running = 0u32;
    for digit in 0..RADIX {
        for (p, hist) in histograms.iter().enumerate() {
            starts[p * RADIX + digit] = running;
            running += hist[digit];
        }
    }
    // Pass 2: stable scatter, one worker per partition. Destinations of
    // different partitions are disjoint by construction of `starts`.
    let starts_ref = &starts;
    executor.for_each_partition(n, |p, range| {
        let mut cursors = starts_ref[p * RADIX..(p + 1) * RADIX].to_vec();
        for slot in &input[range] {
            let digit = digit_of(slot);
            let dest = cursors[digit] as usize;
            cursors[digit] += 1;
            output[dest].store(slot.load(AtomicOrdering::Relaxed), AtomicOrdering::Relaxed);
        }
    });
}

/// Builds the sorted index array for a row-major tuple store, following the
/// paper's Algorithm 1: indices are sorted by one column at a time with a
/// stable sort, from the least-significant position of `column_order` to the
/// most-significant, so that the final order is lexicographic in
/// `column_order`. Ties (identical projections onto `column_order`) keep
/// their original index order.
///
/// Each column is sorted by a stable LSD counting sort over 8-bit digits;
/// digit positions above the column's maximum value are skipped, so dense
/// id spaces (the common case for Datalog constants) take one or two passes
/// per column instead of four.
///
/// `data` is row-major with `arity` columns; `column_order` lists columns
/// from most-significant to least-significant (join columns first).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, or if any column in
/// `column_order` is out of range.
pub fn lexicographic_sort_indices(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    if rows <= 1 {
        return (0..rows as u32).collect();
    }
    // Ping-pong buffers; the atomic cells let scatter destinations cross
    // worker partitions without unsafe aliasing.
    let mut input: Vec<AtomicU32> = (0..rows as u32).map(AtomicU32::new).collect();
    let mut output: Vec<AtomicU32> = (0..rows).map(|_| AtomicU32::new(0)).collect();
    // Least-significant column first (rightmost of column_order).
    for &col in column_order.iter().rev() {
        let max_value =
            crate::thrust::reduce::max_by(device, rows, |r| data[r * arity + col]).unwrap_or(0);
        let passes = radix_passes_for(max_value);
        device.metrics().add_kernel_launch();
        device
            .metrics()
            .add_bytes_read(rows as u64 * 8 * passes.max(1) as u64);
        device
            .metrics()
            .add_bytes_written(rows as u64 * 4 * passes as u64);
        device.metrics().add_ops(rows as u64 * passes as u64);
        // A column whose values are all zero needs no reordering at all.
        for pass in 0..passes {
            counting_sort_pass(device, data, arity, col, (pass * 8) as u32, &input, &output);
            std::mem::swap(&mut input, &mut output);
        }
    }
    input
        .into_iter()
        .map(std::sync::atomic::AtomicU32::into_inner)
        .collect()
}

/// The pre-radix, comparison-based implementation of
/// [`lexicographic_sort_indices`]: one stable merge sort per column. Kept
/// as the reference the radix path is property-tested against and as a
/// fallback for debugging.
pub fn lexicographic_sort_indices_by_comparison(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    let mut indices: Vec<u32> = (0..rows as u32).collect();
    for &col in column_order.iter().rev() {
        device.metrics().add_bytes_read(rows as u64 * 8);
        device.metrics().add_bytes_written(rows as u64 * 4);
        stable_sort_indices_by_key(device, &mut indices, |idx| data[idx as usize * arity + col]);
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn sorts_small_and_large_inputs() {
        let d = device();
        for n in [0usize, 1, 2, 3, 17, 64, 65, 1000, 4097] {
            let mut items: Vec<u32> = (0..n as u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % 10_007)
                .collect();
            let mut expected = items.clone();
            expected.sort();
            stable_sort_by(&d, &mut items, |a, b| a.cmp(b));
            assert_eq!(items, expected, "n = {n}");
        }
    }

    #[test]
    fn sort_is_stable() {
        let d = device();
        // Sort pairs by first element only; second element records original order.
        let mut items: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 7, i)).collect();
        stable_sort_by(&d, &mut items, |a, b| a.0.cmp(&b.0));
        for w in items.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys must keep input order");
            }
        }
    }

    #[test]
    fn sort_indices_by_key_orders_indirectly() {
        let d = device();
        let data = [50u32, 10, 40, 30, 20];
        let mut indices: Vec<u32> = (0..5).collect();
        stable_sort_indices_by_key(&d, &mut indices, |i| data[i as usize]);
        assert_eq!(indices, vec![1, 4, 3, 2, 0]);
    }

    #[test]
    fn radix_passes_match_value_magnitude() {
        assert_eq!(radix_passes_for(0), 0);
        assert_eq!(radix_passes_for(1), 1);
        assert_eq!(radix_passes_for(255), 1);
        assert_eq!(radix_passes_for(256), 2);
        assert_eq!(radix_passes_for(65_535), 2);
        assert_eq!(radix_passes_for(65_536), 3);
        assert_eq!(radix_passes_for(u32::MAX), 4);
    }

    #[test]
    fn lexicographic_sort_matches_comparator_sort() {
        let d = device();
        // 3-arity data, sort by column order [1, 0, 2] (column 1 is the join column).
        let rows = 200usize;
        let data: Vec<u32> = (0..rows * 3)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) % 5)
            .collect();
        let order = [1usize, 0, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &order);
        let mut expected: Vec<u32> = (0..rows as u32).collect();
        expected.sort_by(|&a, &b| {
            let ka = [
                data[a as usize * 3 + 1],
                data[a as usize * 3],
                data[a as usize * 3 + 2],
            ];
            let kb = [
                data[b as usize * 3 + 1],
                data[b as usize * 3],
                data[b as usize * 3 + 2],
            ];
            ka.cmp(&kb).then(a.cmp(&b))
        });
        // The LSD column sort is stable, so ties break by original index too.
        assert_eq!(got, expected);
    }

    #[test]
    fn radix_and_comparison_paths_agree_on_large_values() {
        let d = device();
        // Values spanning all four digit bytes, including u32::MAX.
        let rows = 500usize;
        let data: Vec<u32> = (0..rows * 2)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .chain([u32::MAX, 0])
            .take(rows * 2)
            .collect();
        let radix = lexicographic_sort_indices(&d, &data, 2, &[0, 1]);
        let comparison = lexicographic_sort_indices_by_comparison(&d, &data, 2, &[0, 1]);
        assert_eq!(radix, comparison);
    }

    #[test]
    fn all_equal_column_is_skipped_without_reordering() {
        let d = device();
        // Column 0 is constant zero; order must be decided by column 1 only,
        // with ties keeping the identity order.
        let data = vec![0u32, 5, 0, 3, 0, 5, 0, 1];
        let got = lexicographic_sort_indices(&d, &data, 2, &[0, 1]);
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn lexicographic_sort_of_paper_example() {
        // Paper Section 4.2: tuples {2,1,5}, {2,5,9}, {2,1,2} with the second
        // column as the join column sort to index order [1, 0, 2]... the text
        // gives sorted order (1,2,2) < (1,2,5) < (5,2,9), i.e. indices 2, 0, 1.
        let d = device();
        let data = vec![2u32, 1, 5, 2, 5, 9, 2, 1, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &[1, 0, 2]);
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn lexicographic_sort_rejects_ragged_data() {
        lexicographic_sort_indices(&device(), &[1, 2, 3, 4], 3, &[0]);
    }

    #[test]
    fn sort_with_single_worker_matches_parallel() {
        let seq_device = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par_device = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let items: Vec<u32> = (0..3000u32).map(|i| (i * 97) % 513).collect();
        let mut a = items.clone();
        let mut b = items;
        stable_sort_by(&seq_device, &mut a, |x, y| x.cmp(y));
        stable_sort_by(&par_device, &mut b, |x, y| x.cmp(y));
        assert_eq!(a, b);
    }

    #[test]
    fn radix_sort_with_single_worker_matches_parallel() {
        let seq = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let data: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(97) % 4099).collect();
        let a = lexicographic_sort_indices(&seq, &data, 2, &[1, 0]);
        let b = lexicographic_sort_indices(&par, &data, 2, &[1, 0]);
        assert_eq!(a, b);
    }
}
