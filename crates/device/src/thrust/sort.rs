//! Parallel stable sorts.
//!
//! HISA builds its sorted index array by ordering row indices
//! lexicographically over the key columns (paper Algorithm 1).
//! [`lexicographic_sort_indices`] does this with a **hybrid MSD radix
//! sort**: the most significant occupied key byte is split 256 ways with
//! one data-parallel stable counting pass, buckets recurse independently
//! on the worker pool (skipping byte levels that are constant within a
//! bucket), and small buckets finish with a stable insertion sort — so
//! skewed or dense key distributions touch each element far fewer times
//! than a fixed passes-per-column schedule. The earlier column-wise LSD
//! schedule ([`lexicographic_sort_indices_lsd`]: per-worker histograms, an
//! exclusive scan over the combined counts, and a stable scatter per 8-bit
//! digit) and the comparison path
//! ([`lexicographic_sort_indices_by_comparison`]) are kept as the
//! references all three are property-tested against. The generic
//! comparison-based [`stable_sort_by`] remains for arbitrary element types.

use crate::device::Device;
use crate::metrics::PhaseTimer;
use std::cmp::Ordering;
use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

/// Parallel, stable, comparison-based sort.
///
/// Items are split into one run per worker, each run is sorted with the
/// standard library's stable sort, and runs are then merged pairwise (each
/// merge handled by one worker) until a single run remains — the classic
/// parallel merge-sort schedule. All parallel phases execute on the
/// device's persistent worker pool.
pub fn stable_sort_by<T, F>(device: &Device, items: &mut Vec<T>, compare: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let elem = std::mem::size_of::<T>() as u64;
    device.metrics().add_kernel_launch();
    let executor = device.executor();
    let parts = executor.partitions(n);

    // Sort each partition independently.
    {
        let mut jobs: Vec<&mut [T]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [T] = items.as_mut_slice();
        for range in &parts {
            let (head, tail) = rest.split_at_mut(range.len());
            jobs.push(head);
            rest = tail;
        }
        let compare = &compare;
        executor.run_tasks(jobs, |_, job| job.sort_by(compare));
    }
    let passes = (parts.len().max(2) as f64).log2().ceil() as u64 + 1;
    device.metrics().add_bytes_read(n as u64 * elem * passes);
    device.metrics().add_bytes_written(n as u64 * elem * passes);
    device
        .metrics()
        .add_ops(n as u64 * (n.max(2) as f64).log2().ceil() as u64);

    // Merge runs pairwise until one remains.
    let mut run_bounds: Vec<usize> = parts.iter().map(|r| r.start).collect();
    run_bounds.push(n);
    let mut source = items.clone();
    let mut target: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free approach: use a second owned buffer and swap.
    target.extend_from_slice(&source);
    while run_bounds.len() > 2 {
        let mut new_bounds = Vec::with_capacity(run_bounds.len() / 2 + 2);
        let pair_count = (run_bounds.len() - 1) / 2;
        // Describe each merge job: (a_range, b_range, out_start).
        let mut jobs = Vec::with_capacity(pair_count + 1);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            jobs.push((
                run_bounds[i]..run_bounds[i + 1],
                run_bounds[i + 1]..run_bounds[i + 2],
            ));
            i += 2;
        }
        let leftover = if i + 1 < run_bounds.len() {
            Some(run_bounds[i]..run_bounds[i + 1])
        } else {
            None
        };
        // Split the target buffer into one output slice per job.
        {
            let mut merge_jobs: Vec<(std::ops::Range<usize>, std::ops::Range<usize>, &mut [T])> =
                Vec::with_capacity(jobs.len());
            let mut rest: &mut [T] = target.as_mut_slice();
            let mut cursor = 0usize;
            for (a, b) in &jobs {
                let start = a.start;
                let len = (a.end - a.start) + (b.end - b.start);
                let (_, tail) = rest.split_at_mut(start - cursor);
                let (mine, tail) = tail.split_at_mut(len);
                merge_jobs.push((a.clone(), b.clone(), mine));
                rest = tail;
                cursor = start + len;
            }
            let source_ref = &source;
            let compare = &compare;
            executor.run_tasks(merge_jobs, |_, (a, b, out)| {
                let (mut ai, mut bi, mut oi) = (a.start, b.start, 0usize);
                while ai < a.end && bi < b.end {
                    if compare(&source_ref[bi], &source_ref[ai]) == Ordering::Less {
                        out[oi] = source_ref[bi];
                        bi += 1;
                    } else {
                        out[oi] = source_ref[ai];
                        ai += 1;
                    }
                    oi += 1;
                }
                while ai < a.end {
                    out[oi] = source_ref[ai];
                    ai += 1;
                    oi += 1;
                }
                while bi < b.end {
                    out[oi] = source_ref[bi];
                    bi += 1;
                    oi += 1;
                }
            });
        }
        // Copy any leftover run through unchanged.
        if let Some(range) = leftover.clone() {
            target[range.clone()].copy_from_slice(&source[range]);
        }
        // Rebuild run bounds.
        new_bounds.push(0);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            new_bounds.push(run_bounds[i + 2]);
            i += 2;
        }
        if leftover.is_some() {
            new_bounds.push(n);
        }
        run_bounds = new_bounds;
        std::mem::swap(&mut source, &mut target);
    }
    items.copy_from_slice(&source);
}

/// Stable sort of `indices` by a key derived from each index.
pub fn stable_sort_indices_by_key<K, F>(device: &Device, indices: &mut Vec<u32>, key: F)
where
    K: Ord,
    F: Fn(u32) -> K + Sync,
{
    stable_sort_by(device, indices, |a, b| key(*a).cmp(&key(*b)));
}

/// Number of 8-bit digit positions needed to cover `max_value`.
fn radix_passes_for(max_value: u32) -> usize {
    if max_value == 0 {
        0
    } else {
        (32 - max_value.leading_zeros() as usize).div_ceil(8)
    }
}

/// One stable counting-sort pass over an 8-bit digit of one column.
///
/// `input` and `output` hold row indices; rows are ranked by
/// `(data[row * arity + col] >> shift) & 0xff`. Histograms are built per
/// worker partition, combined with an exclusive scan into per-partition,
/// per-digit start offsets, and scattered back in partition order — which
/// is what makes the pass stable.
fn counting_sort_pass(
    device: &Device,
    data: &[u32],
    arity: usize,
    col: usize,
    shift: u32,
    input: &[AtomicU32],
    output: &[AtomicU32],
) {
    const RADIX: usize = 256;
    let n = input.len();
    let executor = device.executor();
    let parts = executor.partitions(n);
    let digit_of = |slot: &AtomicU32| {
        let row = slot.load(AtomicOrdering::Relaxed) as usize;
        ((data[row * arity + col] >> shift) & 0xff) as usize
    };
    // Pass 1: per-partition digit histograms.
    let parts_ref = &parts;
    let histograms: Vec<Vec<u32>> = executor.map_collect(parts.len(), |p| {
        let mut hist = vec![0u32; RADIX];
        for slot in &input[parts_ref[p].clone()] {
            hist[digit_of(slot)] += 1;
        }
        hist
    });
    // Exclusive scan over (digit, partition): all smaller digits first,
    // then earlier partitions of the same digit.
    let mut starts = vec![0u32; parts.len() * RADIX];
    let mut running = 0u32;
    for digit in 0..RADIX {
        for (p, hist) in histograms.iter().enumerate() {
            starts[p * RADIX + digit] = running;
            running += hist[digit];
        }
    }
    // Pass 2: stable scatter, one worker per partition. Destinations of
    // different partitions are disjoint by construction of `starts`.
    let starts_ref = &starts;
    executor.for_each_partition(n, |p, range| {
        let mut cursors = starts_ref[p * RADIX..(p + 1) * RADIX].to_vec();
        for slot in &input[range] {
            let digit = digit_of(slot);
            let dest = cursors[digit] as usize;
            cursors[digit] += 1;
            output[dest].store(slot.load(AtomicOrdering::Relaxed), AtomicOrdering::Relaxed);
        }
    });
}

/// Buckets at or below this size are finished with a stable insertion sort
/// instead of further MSD splitting.
const MSD_INSERTION_CUTOFF: usize = 32;
/// Inputs at or below this size skip the parallel top-level split and run
/// the sequential MSD recursion directly.
const MSD_SEQUENTIAL_CUTOFF: usize = 2048;

/// Builds the sorted index array for a row-major tuple store: indices end up
/// ordered lexicographically by their projection onto `column_order` (most
/// significant column first), with ties keeping their original index order.
///
/// This is the engine's default sort: a **hybrid MSD radix sort**
/// ([`lexicographic_sort_indices_msd`]) that splits on the most significant
/// occupied byte of the key and recurses per bucket, falling back to a
/// stable insertion sort on small buckets — so skewed and dense id
/// distributions touch each element far fewer times than the fixed
/// passes-per-column LSD schedule. The LSD column sort survives as
/// [`lexicographic_sort_indices_lsd`] and the comparison sort as
/// [`lexicographic_sort_indices_by_comparison`]; all three are
/// property-tested to produce identical orders.
///
/// `data` is row-major with `arity` columns; `column_order` lists columns
/// from most-significant to least-significant (join columns first).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, or if any column in
/// `column_order` is out of range.
pub fn lexicographic_sort_indices(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    lexicographic_sort_indices_msd(device, data, arity, column_order)
}

/// The pre-hybrid default: the paper's Algorithm 1 as a sequence of stable
/// LSD counting sorts, one per column of `column_order` from the
/// least-significant column to the most-significant, each over 8-bit digits
/// with digit positions above the column's maximum skipped. Kept as a
/// property-test reference and as the better schedule when every byte of
/// every column is occupied (uniform dense keys spanning all four bytes).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, or if any column in
/// `column_order` is out of range.
pub fn lexicographic_sort_indices_lsd(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    let _phase = PhaseTimer::new(device.metrics(), "sort");
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    if rows <= 1 {
        return (0..rows as u32).collect();
    }
    // Ping-pong buffers; the atomic cells let scatter destinations cross
    // worker partitions without unsafe aliasing.
    let mut input: Vec<AtomicU32> = (0..rows as u32).map(AtomicU32::new).collect();
    let mut output: Vec<AtomicU32> = (0..rows).map(|_| AtomicU32::new(0)).collect();
    // Least-significant column first (rightmost of column_order).
    for &col in column_order.iter().rev() {
        let max_value =
            crate::thrust::reduce::max_by(device, rows, |r| data[r * arity + col]).unwrap_or(0);
        let passes = radix_passes_for(max_value);
        device.metrics().add_sort_passes(passes as u64);
        device.metrics().add_kernel_launch();
        device
            .metrics()
            .add_bytes_read(rows as u64 * 8 * passes.max(1) as u64);
        device
            .metrics()
            .add_bytes_written(rows as u64 * 4 * passes as u64);
        device.metrics().add_ops(rows as u64 * passes as u64);
        // A column whose values are all zero needs no reordering at all.
        for pass in 0..passes {
            counting_sort_pass(device, data, arity, col, (pass * 8) as u32, &input, &output);
            std::mem::swap(&mut input, &mut output);
        }
    }
    input
        .into_iter()
        .map(std::sync::atomic::AtomicU32::into_inner)
        .collect()
}

/// The significance-ordered byte positions of a key: for every column of
/// `column_order` (most significant first), the occupied 8-bit digit
/// positions from high to low. Digits above a column's maximum value are
/// omitted, exactly as in the LSD path.
fn msd_byte_plan(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
    rows: usize,
) -> Vec<(usize, u32)> {
    let mut plan = Vec::new();
    for &col in column_order {
        let max_value =
            crate::thrust::reduce::max_by(device, rows, |r| data[r * arity + col]).unwrap_or(0);
        for pass in (0..radix_passes_for(max_value)).rev() {
            plan.push((col, (pass * 8) as u32));
        }
    }
    plan
}

/// Lexicographic comparison of two rows' projections onto `column_order`.
#[inline]
fn cmp_rows_on(data: &[u32], arity: usize, column_order: &[usize], x: u32, y: u32) -> Ordering {
    let rx = x as usize * arity;
    let ry = y as usize * arity;
    for &c in column_order {
        match data[rx + c].cmp(&data[ry + c]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// Stable insertion sort of an index bucket by the full `column_order`
/// projection — the MSD base case. Equal keys are never swapped, so ties
/// keep the (already stable) bucket order.
fn insertion_sort_indices(data: &[u32], arity: usize, column_order: &[usize], idxs: &mut [u32]) {
    for i in 1..idxs.len() {
        let mut j = i;
        while j > 0
            && cmp_rows_on(data, arity, column_order, idxs[j - 1], idxs[j]) == Ordering::Greater
        {
            idxs.swap(j - 1, j);
            j -= 1;
        }
    }
}

/// Shared immutable context of one MSD sort: the device (for metrics), the
/// tuple store, and the significance-ordered byte plan.
struct MsdContext<'a> {
    device: &'a Device,
    data: &'a [u32],
    arity: usize,
    column_order: &'a [usize],
    plan: &'a [(usize, u32)],
}

/// Sequential MSD recursion over one bucket: split by the byte at
/// `plan[level]`, recurse per sub-bucket. Byte levels where the whole bucket
/// shares one digit advance without moving anything; buckets at or below
/// [`MSD_INSERTION_CUTOFF`] finish with the insertion sort.
fn msd_sort_bucket(
    ctx: &MsdContext<'_>,
    mut level: usize,
    idxs: &mut [u32],
    scratch: &mut Vec<u32>,
) {
    const RADIX: usize = 256;
    let n = idxs.len();
    if n <= 1 {
        return;
    }
    if n <= MSD_INSERTION_CUTOFF {
        if level < ctx.plan.len() {
            ctx.device.metrics().add_ops((n * n / 2) as u64);
            insertion_sort_indices(ctx.data, ctx.arity, ctx.column_order, idxs);
        }
        return;
    }
    loop {
        if level == ctx.plan.len() {
            // All key bytes consumed: the bucket holds equal keys, whose
            // stable order is already correct.
            return;
        }
        let (col, shift) = ctx.plan[level];
        let digit_of = |i: u32| ((ctx.data[i as usize * ctx.arity + col] >> shift) & 0xff) as usize;
        let mut hist = [0u32; RADIX];
        for &i in idxs.iter() {
            hist[digit_of(i)] += 1;
        }
        ctx.device.metrics().add_sort_passes(1);
        ctx.device.metrics().add_bytes_read(n as u64 * 8);
        if hist.iter().any(|&c| c as usize == n) {
            // One occupied digit: nothing moves at this byte, go deeper.
            level += 1;
            continue;
        }
        // Stable scatter into the scratch bucket, then copy back.
        let mut cursors = [0u32; RADIX];
        let mut running = 0u32;
        for (cursor, &count) in cursors.iter_mut().zip(hist.iter()) {
            *cursor = running;
            running += count;
        }
        scratch.clear();
        scratch.resize(n, 0);
        for &i in idxs.iter() {
            let d = digit_of(i);
            scratch[cursors[d] as usize] = i;
            cursors[d] += 1;
        }
        idxs.copy_from_slice(scratch);
        ctx.device.metrics().add_bytes_written(n as u64 * 4);
        // Recurse per sub-bucket.
        let mut start = 0usize;
        for &count in &hist {
            let len = count as usize;
            if len > 1 {
                msd_sort_bucket(ctx, level + 1, &mut idxs[start..start + len], scratch);
            }
            start += len;
        }
        return;
    }
}

/// Parallel stable 256-way split of one bucket on the first discriminating
/// byte at or after `level`: per-worker-partition histograms, a digit-major
/// exclusive scan, and a stable scatter copied back in place — the same
/// schedule as an LSD pass, restricted to the bucket. Byte levels whose
/// digit is constant over the bucket are skipped. Returns the bucket sizes
/// and the byte level actually split on, or `None` when the remaining
/// levels are all constant (the bucket is already ordered).
fn parallel_msd_split(
    ctx: &MsdContext<'_>,
    idxs: &mut [u32],
    mut level: usize,
) -> Option<([u32; 256], usize)> {
    const RADIX: usize = 256;
    let n = idxs.len();
    let executor = ctx.device.executor();
    loop {
        if level == ctx.plan.len() {
            return None;
        }
        let (col, shift) = ctx.plan[level];
        let digit_of = |i: u32| ((ctx.data[i as usize * ctx.arity + col] >> shift) & 0xff) as usize;
        let parts = executor.partitions(n);
        let parts_ref = &parts;
        let idx_ref = &*idxs;
        let histograms: Vec<Vec<u32>> = executor.map_collect(parts.len(), |p| {
            let mut hist = vec![0u32; RADIX];
            for &i in &idx_ref[parts_ref[p].clone()] {
                hist[digit_of(i)] += 1;
            }
            hist
        });
        ctx.device.metrics().add_sort_passes(1);
        ctx.device.metrics().add_bytes_read(n as u64 * 8);
        let mut global = [0u32; RADIX];
        for hist in &histograms {
            for (g, h) in global.iter_mut().zip(hist.iter()) {
                *g += h;
            }
        }
        if global.iter().any(|&c| c as usize == n) {
            level += 1;
            continue;
        }
        // Exclusive scan over (digit, partition) start offsets, then a
        // stable scatter (partition-order within each digit).
        let mut starts = vec![0u32; parts.len() * RADIX];
        let mut running = 0u32;
        for digit in 0..RADIX {
            for (p, hist) in histograms.iter().enumerate() {
                starts[p * RADIX + digit] = running;
                running += hist[digit];
            }
        }
        let output: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        {
            let starts_ref = &starts;
            let output_ref = &output;
            executor.for_each_partition(n, |p, range| {
                let mut cursors = starts_ref[p * RADIX..(p + 1) * RADIX].to_vec();
                for &i in &idx_ref[range] {
                    let d = digit_of(i);
                    output_ref[cursors[d] as usize].store(i, AtomicOrdering::Relaxed);
                    cursors[d] += 1;
                }
            });
        }
        for (slot, value) in idxs.iter_mut().zip(output) {
            *slot = value.into_inner();
        }
        ctx.device.metrics().add_bytes_written(n as u64 * 4);
        return Some((global, level));
    }
}

/// Hybrid MSD radix implementation of [`lexicographic_sort_indices`].
///
/// Buckets above `MSD_SEQUENTIAL_CUTOFF` are split 256 ways with
/// data-parallel stable counting passes (`parallel_msd_split`), worklist
/// style — so a skewed distribution whose dominant bucket swallows most
/// rows keeps every worker busy on the next split instead of serializing
/// on one task. Buckets at or below the cutoff then recurse independently
/// on the worker pool, splitting on successive key bytes and finishing
/// small buckets with a stable insertion sort. Compared to the LSD
/// schedule, elements stop moving as soon as their bucket is fully
/// ordered; byte levels whose digit is constant across a bucket are
/// skipped entirely.
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, or if any column in
/// `column_order` is out of range.
pub fn lexicographic_sort_indices_msd(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    let _phase = PhaseTimer::new(device.metrics(), "sort");
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    let mut indices: Vec<u32> = (0..rows as u32).collect();
    if rows <= 1 {
        return indices;
    }
    let plan = msd_byte_plan(device, data, arity, column_order, rows);
    if plan.is_empty() {
        return indices;
    }
    device.metrics().add_kernel_launch();
    let ctx = MsdContext {
        device,
        data,
        arity,
        column_order,
        plan: &plan,
    };
    if rows <= MSD_SEQUENTIAL_CUTOFF {
        let mut scratch = Vec::new();
        msd_sort_bucket(&ctx, 0, &mut indices, &mut scratch);
        return indices;
    }
    // Worklist of buckets still above the sequential cutoff: each gets its
    // own parallel split. Buckets whose remaining key bytes are constant
    // drop out already ordered.
    let mut small: Vec<(std::ops::Range<usize>, usize)> = Vec::new();
    let mut large: Vec<(std::ops::Range<usize>, usize)> = vec![(0..rows, 0)];
    while let Some((range, level)) = large.pop() {
        let Some((sizes, used_level)) =
            parallel_msd_split(&ctx, &mut indices[range.clone()], level)
        else {
            continue;
        };
        let mut start = range.start;
        for &size in &sizes {
            let len = size as usize;
            if len > MSD_SEQUENTIAL_CUTOFF {
                large.push((start..start + len, used_level + 1));
            } else if len > 1 {
                small.push((start..start + len, used_level + 1));
            }
            start += len;
        }
    }
    // Sequentially finish the small buckets — disjoint contiguous slices,
    // each claimed as one worker-pool task so uneven buckets balance
    // dynamically.
    small.sort_by_key(|(range, _)| range.start);
    let mut jobs: Vec<(&mut [u32], usize)> = Vec::with_capacity(small.len());
    let mut rest: &mut [u32] = indices.as_mut_slice();
    let mut cursor = 0usize;
    for (range, level) in small {
        let (_, tail) = rest.split_at_mut(range.start - cursor);
        let (bucket, tail) = tail.split_at_mut(range.len());
        cursor = range.end;
        rest = tail;
        jobs.push((bucket, level));
    }
    let executor = device.executor();
    executor.run_tasks(jobs, |_, (bucket, level)| {
        let mut scratch = Vec::new();
        msd_sort_bucket(&ctx, level, bucket, &mut scratch);
    });
    indices
}

/// The pre-radix, comparison-based implementation of
/// [`lexicographic_sort_indices`]: one stable merge sort per column. Kept
/// as the reference the radix path is property-tested against and as a
/// fallback for debugging.
pub fn lexicographic_sort_indices_by_comparison(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(
        data.len() % arity,
        0,
        "data length must be a multiple of arity"
    );
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    let mut indices: Vec<u32> = (0..rows as u32).collect();
    for &col in column_order.iter().rev() {
        device.metrics().add_bytes_read(rows as u64 * 8);
        device.metrics().add_bytes_written(rows as u64 * 4);
        stable_sort_indices_by_key(device, &mut indices, |idx| data[idx as usize * arity + col]);
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn sorts_small_and_large_inputs() {
        let d = device();
        for n in [0usize, 1, 2, 3, 17, 64, 65, 1000, 4097] {
            let mut items: Vec<u32> = (0..n as u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % 10_007)
                .collect();
            let mut expected = items.clone();
            expected.sort();
            stable_sort_by(&d, &mut items, |a, b| a.cmp(b));
            assert_eq!(items, expected, "n = {n}");
        }
    }

    #[test]
    fn sort_is_stable() {
        let d = device();
        // Sort pairs by first element only; second element records original order.
        let mut items: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 7, i)).collect();
        stable_sort_by(&d, &mut items, |a, b| a.0.cmp(&b.0));
        for w in items.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys must keep input order");
            }
        }
    }

    #[test]
    fn sort_indices_by_key_orders_indirectly() {
        let d = device();
        let data = [50u32, 10, 40, 30, 20];
        let mut indices: Vec<u32> = (0..5).collect();
        stable_sort_indices_by_key(&d, &mut indices, |i| data[i as usize]);
        assert_eq!(indices, vec![1, 4, 3, 2, 0]);
    }

    #[test]
    fn radix_passes_match_value_magnitude() {
        assert_eq!(radix_passes_for(0), 0);
        assert_eq!(radix_passes_for(1), 1);
        assert_eq!(radix_passes_for(255), 1);
        assert_eq!(radix_passes_for(256), 2);
        assert_eq!(radix_passes_for(65_535), 2);
        assert_eq!(radix_passes_for(65_536), 3);
        assert_eq!(radix_passes_for(u32::MAX), 4);
    }

    #[test]
    fn lexicographic_sort_matches_comparator_sort() {
        let d = device();
        // 3-arity data, sort by column order [1, 0, 2] (column 1 is the join column).
        let rows = 200usize;
        let data: Vec<u32> = (0..rows * 3)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) % 5)
            .collect();
        let order = [1usize, 0, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &order);
        let mut expected: Vec<u32> = (0..rows as u32).collect();
        expected.sort_by(|&a, &b| {
            let ka = [
                data[a as usize * 3 + 1],
                data[a as usize * 3],
                data[a as usize * 3 + 2],
            ];
            let kb = [
                data[b as usize * 3 + 1],
                data[b as usize * 3],
                data[b as usize * 3 + 2],
            ];
            ka.cmp(&kb).then(a.cmp(&b))
        });
        // The LSD column sort is stable, so ties break by original index too.
        assert_eq!(got, expected);
    }

    #[test]
    fn radix_and_comparison_paths_agree_on_large_values() {
        let d = device();
        // Values spanning all four digit bytes, including u32::MAX.
        let rows = 500usize;
        let data: Vec<u32> = (0..rows * 2)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761))
            .chain([u32::MAX, 0])
            .take(rows * 2)
            .collect();
        let radix = lexicographic_sort_indices(&d, &data, 2, &[0, 1]);
        let comparison = lexicographic_sort_indices_by_comparison(&d, &data, 2, &[0, 1]);
        assert_eq!(radix, comparison);
    }

    #[test]
    fn all_equal_column_is_skipped_without_reordering() {
        let d = device();
        // Column 0 is constant zero; order must be decided by column 1 only,
        // with ties keeping the identity order.
        let data = vec![0u32, 5, 0, 3, 0, 5, 0, 1];
        let got = lexicographic_sort_indices(&d, &data, 2, &[0, 1]);
        assert_eq!(got, vec![3, 1, 0, 2]);
    }

    #[test]
    fn lexicographic_sort_of_paper_example() {
        // Paper Section 4.2: tuples {2,1,5}, {2,5,9}, {2,1,2} with the second
        // column as the join column sort to index order [1, 0, 2]... the text
        // gives sorted order (1,2,2) < (1,2,5) < (5,2,9), i.e. indices 2, 0, 1.
        let d = device();
        let data = vec![2u32, 1, 5, 2, 5, 9, 2, 1, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &[1, 0, 2]);
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn lexicographic_sort_rejects_ragged_data() {
        lexicographic_sort_indices(&device(), &[1, 2, 3, 4], 3, &[0]);
    }

    #[test]
    fn msd_lsd_and_comparison_agree_on_assorted_distributions() {
        let d = device();
        let rows = 3000usize; // above the sequential cutoff: parallel split
        let distributions: Vec<(&str, Vec<u32>)> = vec![
            (
                "uniform-wide",
                (0..rows * 2)
                    .map(|i| (i as u32).wrapping_mul(2_654_435_761))
                    .collect(),
            ),
            (
                "dense-ids",
                (0..rows * 2)
                    .map(|i| (i as u32).wrapping_mul(97) % 1024)
                    .collect(),
            ),
            (
                "skewed-hub",
                (0..rows * 2)
                    .map(|i| {
                        // 90% of keys collapse onto a handful of hub values.
                        let r = (i as u32).wrapping_mul(2_654_435_761);
                        if r.is_multiple_of(10) {
                            r % 100_000
                        } else {
                            r % 4
                        }
                    })
                    .collect(),
            ),
            ("all-equal", vec![7u32; rows * 2]),
        ];
        for (name, data) in &distributions {
            for order in [vec![0usize, 1], vec![1, 0], vec![1]] {
                let msd = lexicographic_sort_indices_msd(&d, data, 2, &order);
                let lsd = lexicographic_sort_indices_lsd(&d, data, 2, &order);
                let cmp = lexicographic_sort_indices_by_comparison(&d, data, 2, &order);
                assert_eq!(msd, lsd, "{name} order {order:?}: MSD vs LSD");
                assert_eq!(lsd, cmp, "{name} order {order:?}: LSD vs comparison");
            }
        }
    }

    #[test]
    fn msd_sequential_and_parallel_cutoffs_agree() {
        let d = device();
        // Straddle the sequential cutoff so both code paths run.
        for rows in [MSD_SEQUENTIAL_CUTOFF - 1, MSD_SEQUENTIAL_CUTOFF + 1] {
            let data: Vec<u32> = (0..rows * 3)
                .map(|i| (i as u32).wrapping_mul(31) % 300)
                .collect();
            let order = [2usize, 0, 1];
            let msd = lexicographic_sort_indices_msd(&d, &data, 3, &order);
            let cmp = lexicographic_sort_indices_by_comparison(&d, &data, 3, &order);
            assert_eq!(msd, cmp, "rows = {rows}");
        }
    }

    #[test]
    fn msd_moves_fewer_bytes_than_lsd_on_skewed_keys() {
        let d = device();
        // Heavily skewed: most rows share one key, sprinkled outliers force
        // two byte levels per column. LSD scatters every row on every pass;
        // MSD stops moving a row as soon as its bucket is resolved, so its
        // scatter write traffic — the memory-bound cost the hybrid sort
        // exists to cut — must be strictly smaller. (Raw pass counts are
        // not comparable: LSD counts full-array passes, MSD counts
        // per-bucket splits of any size.)
        let rows = 6000usize;
        let data: Vec<u32> = (0..rows * 2)
            .map(|i| {
                if i.is_multiple_of(500) {
                    (i as u32) % 60_000
                } else {
                    3
                }
            })
            .collect();
        let before_msd = d.metrics().snapshot();
        let _ = lexicographic_sort_indices_msd(&d, &data, 2, &[0, 1]);
        let msd = d.metrics().snapshot().since(&before_msd);
        let before_lsd = d.metrics().snapshot();
        let _ = lexicographic_sort_indices_lsd(&d, &data, 2, &[0, 1]);
        let lsd = d.metrics().snapshot().since(&before_lsd);
        assert!(msd.sort_passes > 0 && lsd.sort_passes > 0);
        assert!(
            msd.bytes_written < lsd.bytes_written,
            "skew must prune MSD scatter traffic: msd {} vs lsd {} bytes",
            msd.bytes_written,
            lsd.bytes_written,
        );
    }

    #[test]
    fn msd_parallel_split_is_stable_across_worker_counts() {
        let seq = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let data: Vec<u32> = (0..9000u32).map(|i| i.wrapping_mul(97) % 613).collect();
        let a = lexicographic_sort_indices_msd(&seq, &data, 2, &[1, 0]);
        let b = lexicographic_sort_indices_msd(&par, &data, 2, &[1, 0]);
        assert_eq!(a, b);
    }

    #[test]
    fn sort_with_single_worker_matches_parallel() {
        let seq_device = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par_device = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let items: Vec<u32> = (0..3000u32).map(|i| (i * 97) % 513).collect();
        let mut a = items.clone();
        let mut b = items;
        stable_sort_by(&seq_device, &mut a, |x, y| x.cmp(y));
        stable_sort_by(&par_device, &mut b, |x, y| x.cmp(y));
        assert_eq!(a, b);
    }

    #[test]
    fn radix_sort_with_single_worker_matches_parallel() {
        let seq = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let data: Vec<u32> = (0..5000u32).map(|i| i.wrapping_mul(97) % 4099).collect();
        let a = lexicographic_sort_indices(&seq, &data, 2, &[1, 0]);
        let b = lexicographic_sort_indices(&par, &data, 2, &[1, 0]);
        assert_eq!(a, b);
    }
}
