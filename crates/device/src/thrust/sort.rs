//! Parallel stable sorts.
//!
//! HISA builds its sorted index array with a sequence of *stable* sorts, one
//! per tuple column, from the least-significant (rightmost) column to the
//! most-significant (paper Algorithm 1) — a radix sort whose digits are
//! whole columns. [`lexicographic_sort_indices`] implements exactly that on
//! top of the generic [`stable_sort_by`] primitive.

use crate::device::Device;
use std::cmp::Ordering;

/// Parallel, stable, comparison-based sort.
///
/// Items are split into one run per worker, each run is sorted with the
/// standard library's stable sort, and runs are then merged pairwise (each
/// merge handled by one worker) until a single run remains — the classic
/// parallel merge-sort schedule.
pub fn stable_sort_by<T, F>(device: &Device, items: &mut Vec<T>, compare: F)
where
    T: Copy + Send + Sync,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let n = items.len();
    if n <= 1 {
        return;
    }
    let elem = std::mem::size_of::<T>() as u64;
    device.metrics().add_kernel_launch();
    let executor = device.executor();
    let parts = executor.partitions(n);

    // Sort each partition independently.
    {
        let mut jobs: Vec<&mut [T]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [T] = items.as_mut_slice();
        for range in &parts {
            let (head, tail) = rest.split_at_mut(range.len());
            jobs.push(head);
            rest = tail;
        }
        if jobs.len() == 1 {
            jobs.pop().expect("one job").sort_by(&compare);
        } else {
            crossbeam::thread::scope(|scope| {
                for job in jobs {
                    let compare = &compare;
                    scope.spawn(move |_| job.sort_by(compare));
                }
            })
            .expect("sort worker panicked");
        }
    }
    let passes = (parts.len().max(2) as f64).log2().ceil() as u64 + 1;
    device
        .metrics()
        .add_bytes_read(n as u64 * elem * passes);
    device
        .metrics()
        .add_bytes_written(n as u64 * elem * passes);
    device
        .metrics()
        .add_ops(n as u64 * (n.max(2) as f64).log2().ceil() as u64);

    // Merge runs pairwise until one remains.
    let mut run_bounds: Vec<usize> = parts.iter().map(|r| r.start).collect();
    run_bounds.push(n);
    let mut source = items.clone();
    let mut target: Vec<T> = Vec::with_capacity(n);
    // SAFETY-free approach: use a second owned buffer and swap.
    target.extend_from_slice(&source);
    while run_bounds.len() > 2 {
        let mut new_bounds = Vec::with_capacity(run_bounds.len() / 2 + 2);
        let pair_count = (run_bounds.len() - 1) / 2;
        // Describe each merge job: (a_range, b_range, out_start).
        let mut jobs = Vec::with_capacity(pair_count + 1);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            jobs.push((run_bounds[i]..run_bounds[i + 1], run_bounds[i + 1]..run_bounds[i + 2]));
            i += 2;
        }
        let leftover = if i + 1 < run_bounds.len() {
            Some(run_bounds[i]..run_bounds[i + 1])
        } else {
            None
        };
        // Split the target buffer into one output slice per job.
        {
            let mut out_slices: Vec<&mut [T]> = Vec::with_capacity(jobs.len());
            let mut rest: &mut [T] = target.as_mut_slice();
            let mut cursor = 0usize;
            for (a, b) in &jobs {
                let start = a.start;
                let len = (a.end - a.start) + (b.end - b.start);
                let (_, tail) = rest.split_at_mut(start - cursor);
                let (mine, tail) = tail.split_at_mut(len);
                out_slices.push(mine);
                rest = tail;
                cursor = start + len;
            }
            let source_ref = &source;
            let compare = &compare;
            let merge_job = |a: std::ops::Range<usize>, b: std::ops::Range<usize>, out: &mut [T]| {
                let (mut ai, mut bi, mut oi) = (a.start, b.start, 0usize);
                while ai < a.end && bi < b.end {
                    if compare(&source_ref[bi], &source_ref[ai]) == Ordering::Less {
                        out[oi] = source_ref[bi];
                        bi += 1;
                    } else {
                        out[oi] = source_ref[ai];
                        ai += 1;
                    }
                    oi += 1;
                }
                while ai < a.end {
                    out[oi] = source_ref[ai];
                    ai += 1;
                    oi += 1;
                }
                while bi < b.end {
                    out[oi] = source_ref[bi];
                    bi += 1;
                    oi += 1;
                }
            };
            if out_slices.len() <= 1 {
                for ((a, b), out) in jobs.iter().cloned().zip(out_slices) {
                    merge_job(a, b, out);
                }
            } else {
                crossbeam::thread::scope(|scope| {
                    for ((a, b), out) in jobs.iter().cloned().zip(out_slices) {
                        let merge_job = &merge_job;
                        scope.spawn(move |_| merge_job(a, b, out));
                    }
                })
                .expect("merge worker panicked");
            }
        }
        // Copy any leftover run through unchanged.
        if let Some(range) = leftover.clone() {
            target[range.clone()].copy_from_slice(&source[range]);
        }
        // Rebuild run bounds.
        new_bounds.push(0);
        let mut i = 0;
        while i + 2 < run_bounds.len() {
            new_bounds.push(run_bounds[i + 2]);
            i += 2;
        }
        if leftover.is_some() {
            new_bounds.push(n);
        }
        run_bounds = new_bounds;
        std::mem::swap(&mut source, &mut target);
    }
    items.copy_from_slice(&source);
}

/// Stable sort of `indices` by a key derived from each index.
pub fn stable_sort_indices_by_key<K, F>(device: &Device, indices: &mut Vec<u32>, key: F)
where
    K: Ord,
    F: Fn(u32) -> K + Sync,
{
    stable_sort_by(device, indices, |a, b| key(*a).cmp(&key(*b)));
}

/// Builds the sorted index array for a row-major tuple store, following the
/// paper's Algorithm 1: indices are sorted by one column at a time with a
/// stable sort, from the least-significant position of `column_order` to the
/// most-significant, so that the final order is lexicographic in
/// `column_order`.
///
/// `data` is row-major with `arity` columns; `column_order` lists columns
/// from most-significant to least-significant (join columns first).
///
/// # Panics
///
/// Panics if `data.len()` is not a multiple of `arity`, or if any column in
/// `column_order` is out of range.
pub fn lexicographic_sort_indices(
    device: &Device,
    data: &[u32],
    arity: usize,
    column_order: &[usize],
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    assert_eq!(data.len() % arity, 0, "data length must be a multiple of arity");
    assert!(
        column_order.iter().all(|&c| c < arity),
        "column_order entries must be < arity"
    );
    let rows = data.len() / arity;
    let mut indices: Vec<u32> = (0..rows as u32).collect();
    // Least-significant column first (rightmost of column_order).
    for &col in column_order.iter().rev() {
        device
            .metrics()
            .add_bytes_read(rows as u64 * 8);
        device.metrics().add_bytes_written(rows as u64 * 4);
        stable_sort_indices_by_key(device, &mut indices, |idx| {
            data[idx as usize * arity + col]
        });
    }
    indices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn sorts_small_and_large_inputs() {
        let d = device();
        for n in [0usize, 1, 2, 3, 17, 64, 65, 1000, 4097] {
            let mut items: Vec<u32> = (0..n as u32)
                .map(|i| i.wrapping_mul(2_654_435_761) % 10_007)
                .collect();
            let mut expected = items.clone();
            expected.sort();
            stable_sort_by(&d, &mut items, |a, b| a.cmp(b));
            assert_eq!(items, expected, "n = {n}");
        }
    }

    #[test]
    fn sort_is_stable() {
        let d = device();
        // Sort pairs by first element only; second element records original order.
        let mut items: Vec<(u32, u32)> = (0..500u32).map(|i| (i % 7, i)).collect();
        stable_sort_by(&d, &mut items, |a, b| a.0.cmp(&b.0));
        for w in items.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "equal keys must keep input order");
            }
        }
    }

    #[test]
    fn sort_indices_by_key_orders_indirectly() {
        let d = device();
        let data = vec![50u32, 10, 40, 30, 20];
        let mut indices: Vec<u32> = (0..5).collect();
        stable_sort_indices_by_key(&d, &mut indices, |i| data[i as usize]);
        assert_eq!(indices, vec![1, 4, 3, 2, 0]);
    }

    #[test]
    fn lexicographic_sort_matches_comparator_sort() {
        let d = device();
        // 3-arity data, sort by column order [1, 0, 2] (column 1 is the join column).
        let rows = 200usize;
        let data: Vec<u32> = (0..rows * 3)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) % 5)
            .collect();
        let order = [1usize, 0, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &order);
        let mut expected: Vec<u32> = (0..rows as u32).collect();
        expected.sort_by(|&a, &b| {
            let ka = [
                data[a as usize * 3 + 1],
                data[a as usize * 3],
                data[a as usize * 3 + 2],
            ];
            let kb = [
                data[b as usize * 3 + 1],
                data[b as usize * 3],
                data[b as usize * 3 + 2],
            ];
            ka.cmp(&kb).then(a.cmp(&b))
        });
        // The LSD column sort is stable, so ties break by original index too.
        assert_eq!(got, expected);
    }

    #[test]
    fn lexicographic_sort_of_paper_example() {
        // Paper Section 4.2: tuples {2,1,5}, {2,5,9}, {2,1,2} with the second
        // column as the join column sort to index order [1, 0, 2]... the text
        // gives sorted order (1,2,2) < (1,2,5) < (5,2,9), i.e. indices 2, 0, 1.
        let d = device();
        let data = vec![2u32, 1, 5, 2, 5, 9, 2, 1, 2];
        let got = lexicographic_sort_indices(&d, &data, 3, &[1, 0, 2]);
        assert_eq!(got, vec![2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "multiple of arity")]
    fn lexicographic_sort_rejects_ragged_data() {
        lexicographic_sort_indices(&device(), &[1, 2, 3, 4], 3, &[0]);
    }

    #[test]
    fn sort_with_single_worker_matches_parallel() {
        let seq_device = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let par_device = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let items: Vec<u32> = (0..3000u32).map(|i| (i * 97) % 513).collect();
        let mut a = items.clone();
        let mut b = items;
        stable_sort_by(&seq_device, &mut a, |x, y| x.cmp(y));
        stable_sort_by(&par_device, &mut b, |x, y| x.cmp(y));
        assert_eq!(a, b);
    }
}
