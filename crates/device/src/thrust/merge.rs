//! Merge-path parallel merge (Green, McColl, Bader — "GPU Merge Path").
//!
//! The paper merges the sorted index arrays of two HISAs (full and delta)
//! with Thrust's merge-path implementation. Merge path splits the combined
//! output evenly across workers by binary-searching the cross diagonals of
//! the (|A|, |B|) merge grid, so every worker produces an equal slice of the
//! result without communicating.

use crate::device::Device;
use std::cmp::Ordering;

/// Finds the (a_idx, b_idx) split point on diagonal `diag`, i.e. the number
/// of elements each input contributes to the first `diag` output elements.
fn merge_path_partition<T, F>(a: &[T], b: &[T], diag: usize, compare: &F) -> (usize, usize)
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] vs b[diag - mid - 1]: if a[mid] is strictly greater, the
        // split point is to the left; ties favour taking from `a` first so
        // the merge is stable (elements of `a` precede equal elements of `b`).
        if compare(&a[mid], &b[diag - mid - 1]) == Ordering::Greater {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, diag - lo)
}

/// Merges two sorted sequences into one sorted output, in parallel, stably
/// (ties keep all elements of `a` before elements of `b`).
///
/// The inputs must each be sorted according to `compare`; the output is their
/// stable merge.
pub fn merge_path_merge<T, F>(device: &Device, a: &[T], b: &[T], compare: F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let total = a.len() + b.len();
    let elem = std::mem::size_of::<T>() as u64;
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read(total as u64 * elem);
    device.metrics().add_bytes_written(total as u64 * elem);
    device
        .metrics()
        .add_ops(total as u64 + (total.max(2) as f64).log2().ceil() as u64);
    if total == 0 {
        return Vec::new();
    }
    let executor = device.executor();
    let parts = executor.partitions(total);
    // Compute the merge-path split for the start of every partition.
    let splits: Vec<(usize, usize)> = parts
        .iter()
        .map(|r| merge_path_partition(a, b, r.start, &compare))
        .collect();
    let mut out = vec![T::default(); total];
    {
        let parts_ref = &parts;
        let splits_ref = &splits;
        let compare_ref = &compare;
        // Each partition owns out[r.start..r.end]; fill() gives disjoint slices.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [T] = out.as_mut_slice();
        for r in parts_ref {
            let (head, tail) = rest.split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        let run = |p: usize, slice: &mut [T]| {
            let range = parts_ref[p].clone();
            let (mut ai, mut bi) = splits_ref[p];
            for slot in slice.iter_mut() {
                let take_a = if ai >= a.len() {
                    false
                } else if bi >= b.len() {
                    true
                } else {
                    compare_ref(&b[bi], &a[ai]) != Ordering::Less
                };
                if take_a {
                    *slot = a[ai];
                    ai += 1;
                } else {
                    *slot = b[bi];
                    bi += 1;
                }
            }
            let _ = range;
        };
        executor.run_tasks(slices, run);
    }
    out
}

/// Merges two sorted `u32` index arrays whose order is defined indirectly by
/// a key function (e.g. the lexicographic tuple behind each index).
pub fn merge_sorted_indices_by_key<K, F>(device: &Device, a: &[u32], b: &[u32], key: F) -> Vec<u32>
where
    K: Ord,
    F: Fn(u32) -> K + Sync,
{
    merge_path_merge(device, a, b, |x, y| key(*x).cmp(&key(*y)))
}

/// The row slice behind index `idx` of a row-major buffer.
#[inline]
fn row_of(data: &[u32], arity: usize, idx: u32) -> &[u32] {
    let start = idx as usize * arity;
    &data[start..start + arity]
}

/// Merge-path split point for [`merge_sorted_index_rows`]: how many elements
/// `a` contributes to the first `diag` outputs, comparing row slices in
/// place (ties favour `a`, keeping the merge stable).
fn merge_path_partition_rows(
    a: &[u32],
    b: &[u32],
    data: &[u32],
    arity: usize,
    b_offset: u32,
    diag: usize,
) -> (usize, usize) {
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        let ra = row_of(data, arity, a[mid]);
        let rb = row_of(data, arity, b[diag - mid - 1] + b_offset);
        if ra > rb {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, diag - lo)
}

/// Merges two sorted index arrays over one shared row-major `data` buffer,
/// comparing row slices **in place** — the allocation-free sibling of
/// [`merge_sorted_indices_by_key`] for the HISA merge hot loop, which would
/// otherwise materialise an owned key per comparison.
///
/// `b`'s entries address rows `b[i] + b_offset` of `data` (the delta rows a
/// caller appended after the first `b_offset` rows); the offset is folded
/// into both the comparisons and the output, so no shifted copy of `b` is
/// ever built. The output is the stable merge (ties keep `a` first) with
/// every `b` entry already offset.
///
/// # Panics
///
/// Panics if any (offset) index addresses a row outside `data`.
pub fn merge_sorted_index_rows(
    device: &Device,
    a: &[u32],
    b: &[u32],
    data: &[u32],
    arity: usize,
    b_offset: u32,
) -> Vec<u32> {
    assert!(arity > 0, "arity must be positive");
    let total = a.len() + b.len();
    device.metrics().add_kernel_launch();
    // Each output element costs one index write plus (amortised) one
    // row-pair comparison read on top of the index reads.
    device
        .metrics()
        .add_bytes_read(total as u64 * (4 + 8 * arity as u64));
    device.metrics().add_bytes_written(total as u64 * 4);
    device
        .metrics()
        .add_ops(total as u64 + (total.max(2) as f64).log2().ceil() as u64);
    if total == 0 {
        return Vec::new();
    }
    let executor = device.executor();
    let parts = executor.partitions(total);
    let splits: Vec<(usize, usize)> = parts
        .iter()
        .map(|r| merge_path_partition_rows(a, b, data, arity, b_offset, r.start))
        .collect();
    let mut out = vec![0u32; total];
    {
        let splits_ref = &splits;
        let mut slices: Vec<&mut [u32]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [u32] = out.as_mut_slice();
        for r in &parts {
            let (head, tail) = rest.split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        executor.run_tasks(slices, |p, slice| {
            let (mut ai, mut bi) = splits_ref[p];
            for slot in slice.iter_mut() {
                let take_a = if ai >= a.len() {
                    false
                } else if bi >= b.len() {
                    true
                } else {
                    // Stable: take from `a` unless `b`'s row is strictly
                    // smaller.
                    row_of(data, arity, b[bi] + b_offset) >= row_of(data, arity, a[ai])
                };
                if take_a {
                    *slot = a[ai];
                    ai += 1;
                } else {
                    *slot = b[bi] + b_offset;
                    bi += 1;
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn merges_empty_inputs() {
        let d = device();
        let out: Vec<u32> = merge_path_merge(&d, &[], &[], |a, b| a.cmp(b));
        assert!(out.is_empty());
        assert_eq!(
            merge_path_merge(&d, &[1u32, 2], &[], |a, b| a.cmp(b)),
            vec![1, 2]
        );
        assert_eq!(merge_path_merge(&d, &[], &[3u32], |a, b| a.cmp(b)), vec![3]);
    }

    #[test]
    fn merge_matches_std_merge_on_random_inputs() {
        let d = device();
        for (na, nb) in [
            (1usize, 1usize),
            (10, 3),
            (100, 100),
            (1000, 777),
            (1, 1000),
        ] {
            let mut a: Vec<u32> = (0..na as u32).map(|i| (i * 37) % 523).collect();
            let mut b: Vec<u32> = (0..nb as u32).map(|i| (i * 91) % 523).collect();
            a.sort();
            b.sort();
            let got = merge_path_merge(&d, &a, &b, |x, y| x.cmp(y));
            let mut expected = a.clone();
            expected.extend_from_slice(&b);
            expected.sort();
            assert_eq!(got, expected, "na={na} nb={nb}");
        }
    }

    #[test]
    fn merge_is_stable_with_a_before_b() {
        let d = device();
        // Tag elements with their source; equal keys must keep a's first.
        let a: Vec<(u32, u32)> = vec![(1, 0), (2, 0), (2, 0), (5, 0)];
        let b: Vec<(u32, u32)> = vec![(2, 1), (5, 1)];
        let out = merge_path_merge(&d, &a, &b, |x, y| x.0.cmp(&y.0));
        assert_eq!(out, vec![(1, 0), (2, 0), (2, 0), (2, 1), (5, 0), (5, 1)]);
    }

    #[test]
    fn merge_sorted_indices_by_key_uses_indirect_order() {
        let d = device();
        let data = [10u32, 30, 50, 20, 40];
        // a holds indices {0, 1, 2} sorted by data, b holds {3, 4}.
        let a = vec![0u32, 1, 2];
        let b = vec![3u32, 4];
        let merged = merge_sorted_indices_by_key(&d, &a, &b, |i| data[i as usize]);
        let values: Vec<u32> = merged.iter().map(|&i| data[i as usize]).collect();
        assert_eq!(values, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn merge_index_rows_matches_keyed_merge_with_shifted_copy() {
        let d = device();
        // Two-column rows; `full` holds rows 0..4 sorted, `delta` rows 4..7.
        let data: Vec<u32> = vec![
            1, 9, 5, 0, 2, 2, 9, 9, // full rows (storage order)
            0, 1, 3, 3, 5, 1, // delta rows (appended)
        ];
        let a = vec![0u32, 2, 1, 3]; // full indices sorted by row value
        let b = vec![0u32, 1, 2]; // delta indices, rows already sorted
        let got = merge_sorted_index_rows(&d, &a, &b, &data, 2, 4);
        // Reference: shift b by hand and merge with the allocating key path.
        let shifted: Vec<u32> = b.iter().map(|&i| i + 4).collect();
        let expected = merge_sorted_indices_by_key(&d, &a, &shifted, |i| {
            let r = i as usize * 2;
            data[r..r + 2].to_vec()
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn merge_index_rows_is_stable_and_handles_empty_sides() {
        let d = device();
        let data = vec![7u32, 7, 7]; // three identical 1-column rows
        let a = vec![0u32, 1];
        let b = vec![0u32];
        // Equal rows: a's entries must precede the (offset) b entry.
        assert_eq!(merge_sorted_index_rows(&d, &a, &b, &data, 1, 2), [0, 1, 2]);
        assert_eq!(merge_sorted_index_rows(&d, &a, &[], &data, 1, 2), [0, 1]);
        assert_eq!(merge_sorted_index_rows(&d, &[], &b, &data, 1, 2), [2]);
        let empty: Vec<u32> = merge_sorted_index_rows(&d, &[], &[], &data, 1, 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn merge_index_rows_agrees_across_worker_counts() {
        let d1 = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let d8 = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let rows = 800usize;
        let data: Vec<u32> = (0..(rows + 200) * 2)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) % 97)
            .collect();
        let mut a: Vec<u32> = (0..rows as u32).collect();
        a.sort_by_key(|&i| (data[i as usize * 2], data[i as usize * 2 + 1]));
        let mut b: Vec<u32> = (0..200u32).collect();
        b.sort_by_key(|&i| {
            let r = (i + rows as u32) as usize * 2;
            (data[r], data[r + 1])
        });
        let m1 = merge_sorted_index_rows(&d1, &a, &b, &data, 2, rows as u32);
        let m8 = merge_sorted_index_rows(&d8, &a, &b, &data, 2, rows as u32);
        assert_eq!(m1, m8);
        assert_eq!(m1.len(), rows + 200);
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let d1 = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let d8 = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let a: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..500).map(|i| i * 2 + 1).collect();
        let m1 = merge_path_merge(&d1, &a, &b, |x, y| x.cmp(y));
        let m8 = merge_path_merge(&d8, &a, &b, |x, y| x.cmp(y));
        assert_eq!(m1, m8);
    }
}
