//! Merge-path parallel merge (Green, McColl, Bader — "GPU Merge Path").
//!
//! The paper merges the sorted index arrays of two HISAs (full and delta)
//! with Thrust's merge-path implementation. Merge path splits the combined
//! output evenly across workers by binary-searching the cross diagonals of
//! the (|A|, |B|) merge grid, so every worker produces an equal slice of the
//! result without communicating.

use crate::device::Device;
use std::cmp::Ordering;

/// Finds the (a_idx, b_idx) split point on diagonal `diag`, i.e. the number
/// of elements each input contributes to the first `diag` output elements.
fn merge_path_partition<T, F>(a: &[T], b: &[T], diag: usize, compare: &F) -> (usize, usize)
where
    F: Fn(&T, &T) -> Ordering,
{
    let mut lo = diag.saturating_sub(b.len());
    let mut hi = diag.min(a.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        // a[mid] vs b[diag - mid - 1]: if a[mid] is strictly greater, the
        // split point is to the left; ties favour taking from `a` first so
        // the merge is stable (elements of `a` precede equal elements of `b`).
        if compare(&a[mid], &b[diag - mid - 1]) == Ordering::Greater {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    (lo, diag - lo)
}

/// Merges two sorted sequences into one sorted output, in parallel, stably
/// (ties keep all elements of `a` before elements of `b`).
///
/// The inputs must each be sorted according to `compare`; the output is their
/// stable merge.
pub fn merge_path_merge<T, F>(device: &Device, a: &[T], b: &[T], compare: F) -> Vec<T>
where
    T: Copy + Send + Sync + Default,
    F: Fn(&T, &T) -> Ordering + Sync,
{
    let total = a.len() + b.len();
    let elem = std::mem::size_of::<T>() as u64;
    device.metrics().add_kernel_launch();
    device.metrics().add_bytes_read(total as u64 * elem);
    device.metrics().add_bytes_written(total as u64 * elem);
    device
        .metrics()
        .add_ops(total as u64 + (total.max(2) as f64).log2().ceil() as u64);
    if total == 0 {
        return Vec::new();
    }
    let executor = device.executor();
    let parts = executor.partitions(total);
    // Compute the merge-path split for the start of every partition.
    let splits: Vec<(usize, usize)> = parts
        .iter()
        .map(|r| merge_path_partition(a, b, r.start, &compare))
        .collect();
    let mut out = vec![T::default(); total];
    {
        let parts_ref = &parts;
        let splits_ref = &splits;
        let compare_ref = &compare;
        // Each partition owns out[r.start..r.end]; fill() gives disjoint slices.
        let mut slices: Vec<&mut [T]> = Vec::with_capacity(parts.len());
        let mut rest: &mut [T] = out.as_mut_slice();
        for r in parts_ref {
            let (head, tail) = rest.split_at_mut(r.len());
            slices.push(head);
            rest = tail;
        }
        let run = |p: usize, slice: &mut [T]| {
            let range = parts_ref[p].clone();
            let (mut ai, mut bi) = splits_ref[p];
            for slot in slice.iter_mut() {
                let take_a = if ai >= a.len() {
                    false
                } else if bi >= b.len() {
                    true
                } else {
                    compare_ref(&b[bi], &a[ai]) != Ordering::Less
                };
                if take_a {
                    *slot = a[ai];
                    ai += 1;
                } else {
                    *slot = b[bi];
                    bi += 1;
                }
            }
            let _ = range;
        };
        executor.run_tasks(slices, run);
    }
    out
}

/// Merges two sorted `u32` index arrays whose order is defined indirectly by
/// a key function (e.g. the lexicographic tuple behind each index).
pub fn merge_sorted_indices_by_key<K, F>(device: &Device, a: &[u32], b: &[u32], key: F) -> Vec<u32>
where
    K: Ord,
    F: Fn(u32) -> K + Sync,
{
    merge_path_merge(device, a, b, |x, y| key(*x).cmp(&key(*y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn merges_empty_inputs() {
        let d = device();
        let out: Vec<u32> = merge_path_merge(&d, &[], &[], |a, b| a.cmp(b));
        assert!(out.is_empty());
        assert_eq!(
            merge_path_merge(&d, &[1u32, 2], &[], |a, b| a.cmp(b)),
            vec![1, 2]
        );
        assert_eq!(merge_path_merge(&d, &[], &[3u32], |a, b| a.cmp(b)), vec![3]);
    }

    #[test]
    fn merge_matches_std_merge_on_random_inputs() {
        let d = device();
        for (na, nb) in [
            (1usize, 1usize),
            (10, 3),
            (100, 100),
            (1000, 777),
            (1, 1000),
        ] {
            let mut a: Vec<u32> = (0..na as u32).map(|i| (i * 37) % 523).collect();
            let mut b: Vec<u32> = (0..nb as u32).map(|i| (i * 91) % 523).collect();
            a.sort();
            b.sort();
            let got = merge_path_merge(&d, &a, &b, |x, y| x.cmp(y));
            let mut expected = a.clone();
            expected.extend_from_slice(&b);
            expected.sort();
            assert_eq!(got, expected, "na={na} nb={nb}");
        }
    }

    #[test]
    fn merge_is_stable_with_a_before_b() {
        let d = device();
        // Tag elements with their source; equal keys must keep a's first.
        let a: Vec<(u32, u32)> = vec![(1, 0), (2, 0), (2, 0), (5, 0)];
        let b: Vec<(u32, u32)> = vec![(2, 1), (5, 1)];
        let out = merge_path_merge(&d, &a, &b, |x, y| x.0.cmp(&y.0));
        assert_eq!(out, vec![(1, 0), (2, 0), (2, 0), (2, 1), (5, 0), (5, 1)]);
    }

    #[test]
    fn merge_sorted_indices_by_key_uses_indirect_order() {
        let d = device();
        let data = [10u32, 30, 50, 20, 40];
        // a holds indices {0, 1, 2} sorted by data, b holds {3, 4}.
        let a = vec![0u32, 1, 2];
        let b = vec![3u32, 4];
        let merged = merge_sorted_indices_by_key(&d, &a, &b, |i| data[i as usize]);
        let values: Vec<u32> = merged.iter().map(|&i| data[i as usize]).collect();
        assert_eq!(values, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn single_worker_and_many_workers_agree() {
        let d1 = Device::with_workers(DeviceProfile::nvidia_h100(), 1);
        let d8 = Device::with_workers(DeviceProfile::nvidia_h100(), 8);
        let a: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..500).map(|i| i * 2 + 1).collect();
        let m1 = merge_path_merge(&d1, &a, &b, |x, y| x.cmp(y));
        let m8 = merge_path_merge(&d8, &a, &b, |x, y| x.cmp(y));
        assert_eq!(m1, m8);
    }
}
