//! Parallel reductions.

use crate::device::Device;

/// Sums `values[i] = f(i)` for `i in 0..n` in parallel.
pub fn sum_by<F>(device: &Device, n: usize, f: F) -> u64
where
    F: Fn(usize) -> u64 + Sync,
{
    device.metrics().add_kernel_launch();
    device.metrics().add_ops(n as u64);
    let partials = device
        .executor()
        .partitions(n)
        .into_iter()
        .collect::<Vec<_>>();
    let mut sums = vec![0u64; partials.len()];
    {
        let partials_ref = &partials;
        device
            .executor()
            .fill(&mut sums, |p| partials_ref[p].clone().map(&f).sum());
    }
    sums.into_iter().sum()
}

/// Counts indices in `0..n` for which `pred(i)` holds.
pub fn count_if<F>(device: &Device, n: usize, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    sum_by(device, n, |i| u64::from(pred(i))) as usize
}

/// Maximum of `f(i)` over `0..n`, or `None` when `n == 0`.
pub fn max_by<F>(device: &Device, n: usize, f: F) -> Option<u32>
where
    F: Fn(usize) -> u32 + Sync,
{
    if n == 0 {
        return None;
    }
    device.metrics().add_kernel_launch();
    device.metrics().add_ops(n as u64);
    let parts = device.executor().partitions(n);
    let mut maxima = vec![0u32; parts.len()];
    {
        let parts_ref = &parts;
        device.executor().fill(&mut maxima, |p| {
            parts_ref[p].clone().map(&f).max().unwrap_or(0)
        });
    }
    maxima.into_iter().max()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::DeviceProfile;

    fn device() -> Device {
        Device::with_workers(DeviceProfile::nvidia_h100(), 4)
    }

    #[test]
    fn sum_matches_closed_form() {
        let d = device();
        let n = 10_000u64;
        assert_eq!(sum_by(&d, n as usize, |i| i as u64), n * (n - 1) / 2);
    }

    #[test]
    fn sum_of_empty_range_is_zero() {
        assert_eq!(sum_by(&device(), 0, |_| 1), 0);
    }

    #[test]
    fn count_if_counts_predicate_hits() {
        let d = device();
        assert_eq!(count_if(&d, 100, |i| i % 10 == 0), 10);
    }

    #[test]
    fn max_by_finds_maximum() {
        let d = device();
        assert_eq!(max_by(&d, 1000, |i| ((i * 37) % 991) as u32), Some(990));
        assert_eq!(max_by(&d, 0, |i| i as u32), None);
    }
}
